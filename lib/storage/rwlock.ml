(* A small readers-writer lock built on the stdlib Mutex/Condition.

   Reader-preferring by design: a thread that already holds the lock in
   read mode may re-acquire it in read mode without deadlocking (the
   engine nests read sections when a prepared statement runs inside a
   read statement), which rules out writer priority — a waiting writer
   must not block an arriving reader, or recursive read acquisition
   would self-deadlock.  Writers are rare and short here (a transaction
   commit installing its page set, a snapshot declaration appending to
   the maplog), so writer starvation is not a practical concern.

   The protected state is the committed page store and the snapshot
   archive: readers are whole read statements, writers are commit
   bodies.  Simulated device sleeps must happen outside this lock. *)

type t = {
  m : Mutex.t;
  c : Condition.t;
  mutable readers : int;    (* active read-mode holders *)
  mutable writer : bool;    (* a write-mode holder is active *)
}

let create () = { m = Mutex.create (); c = Condition.create (); readers = 0; writer = false }

let read_lock t =
  (* lint: allow — Condition.wait needs the raw mutex; release is in
     read_unlock, enforced by the with_read wrapper below. *)
  Mutex.lock t.m;
  while t.writer do
    Condition.wait t.c t.m
  done;
  t.readers <- t.readers + 1;
  Mutex.unlock t.m

let read_unlock t =
  (* lint: allow — short state flip; Condition.broadcast pairs with the
     raw mutex held in read_lock. *)
  Mutex.lock t.m;
  t.readers <- t.readers - 1;
  if t.readers = 0 then Condition.broadcast t.c;
  Mutex.unlock t.m

let write_lock t =
  (* lint: allow — Condition.wait needs the raw mutex; release is in
     write_unlock, enforced by the with_write wrapper below. *)
  Mutex.lock t.m;
  while t.writer || t.readers > 0 do
    Condition.wait t.c t.m
  done;
  t.writer <- true;
  Mutex.unlock t.m

let write_unlock t =
  (* lint: allow — short state flip; Condition.broadcast pairs with the
     raw mutex held in write_lock. *)
  Mutex.lock t.m;
  t.writer <- false;
  Condition.broadcast t.c;
  Mutex.unlock t.m

let with_read t f = read_lock t; Fun.protect ~finally:(fun () -> read_unlock t) f
let with_write t f = write_lock t; Fun.protect ~finally:(fun () -> write_unlock t) f
