(* Global cost accounting for the storage manager and the Retro snapshot
   layer.

   Counter state lives in the Obs.Metrics registry — the root metric
   scope — reached through Obs.Scope handles (one named counter per
   field below), so every increment also charges whatever scope is
   active.  This module holds no independent mutable totals: it is a
   compatibility shim that exposes the root scope under the historical
   record-of-ints API the benchmarks and the RQL layer were written
   against.  Reading [global] through {!copy} (or {!snapshot})
   materializes the registry counters into a plain record; {!diff} then
   attributes counter deltas to a code region exactly as before. *)

module C = Obs.Scope

(* The scope-charged counters.  Instrumentation points in disk.ml,
   pager.ml, txn.ml and lib/retro increment these directly: with no
   child scope active a handle increment is a pre-looked-up mutable-
   field write plus one physical-equality test, so the hot paths cost
   what the old struct fields did. *)
let c_db_page_reads = C.counter "storage.db_page_reads"
let c_db_page_writes = C.counter "storage.db_page_writes"
let c_pagelog_reads = C.counter "storage.pagelog_reads"
let c_pagelog_writes = C.counter "storage.pagelog_writes"
let c_maplog_appends = C.counter "retro.maplog_appends"
let c_maplog_scanned = C.counter "retro.maplog_scanned"
let c_snap_cache_hits = C.counter "retro.snap_cache_hits"
let c_snap_cache_misses = C.counter "retro.snap_cache_misses"
let c_pages_allocated = C.counter "storage.pages_allocated"
let c_txn_commits = C.counter "storage.txn_commits"
let c_txn_aborts = C.counter "storage.txn_aborts"
let c_cow_archived = C.counter "retro.cow_archived"
let c_wal_appends = C.counter "storage.wal_appends"
let c_wal_bytes = C.counter "storage.wal_bytes"
let c_wal_fsyncs = C.counter "storage.wal_fsyncs"

(* Durability events outside the steady-state cost model: recoveries
   performed, torn/corrupt WAL tails discarded at recovery, and archive
   checksum verification failures (each one marks a snapshot damaged). *)
let c_recoveries = C.counter "storage.recoveries"
let c_torn_tail_discards = C.counter "storage.torn_tail_discards"
let c_checksum_failures = C.counter "retro.checksum_failures"

(* Archive-lifecycle events (VACUUM SNAPSHOTS / CHECKPOINT) and the
   transient-read-retry path.  Registry-only, like the durability
   events above: they are rare maintenance operations, not steady-state
   costs, so the legacy record API does not carry them. *)
let c_checkpoints = C.counter "storage.checkpoints"
let c_wal_truncated_bytes = C.counter "storage.wal_truncated_bytes"
let c_snapshots_vacuumed = C.counter "retro.snapshots_vacuumed"
let c_blocks_reclaimed = C.counter "retro.blocks_reclaimed"
let c_read_retries = C.counter "storage.read_retries"

(* The two page-read instrumentation points (pager.ml and disk.ml call
   these): one code path charges the per-device counter, the combined
   storage.page_reads total, and the (table, snapshot) heat cell of
   every active scope, so sys_heat partitions the total exactly. *)
let record_db_page_read () = C.page_read C.Db_read c_db_page_reads
let record_pagelog_read () = C.page_read C.Archive_read c_pagelog_reads

type t = {
  mutable db_page_reads : int;      (* current-state pages, memory resident *)
  mutable db_page_writes : int;
  mutable pagelog_reads : int;      (* snapshot archive reads (simulated SSD) *)
  mutable pagelog_writes : int;
  mutable maplog_appends : int;
  mutable maplog_scanned : int;     (* maplog entries visited during SPT builds *)
  mutable snap_cache_hits : int;
  mutable snap_cache_misses : int;
  mutable pages_allocated : int;
  mutable txn_commits : int;
  mutable txn_aborts : int;
  mutable cow_archived : int;       (* pre-state pages copied out at commit *)
  mutable wal_appends : int;        (* records appended to the write-ahead log *)
  mutable wal_bytes : int;          (* bytes of WAL frames written *)
  mutable wal_fsyncs : int;         (* modeled fsync barriers *)
}

let make () = {
  db_page_reads = 0;
  db_page_writes = 0;
  pagelog_reads = 0;
  pagelog_writes = 0;
  maplog_appends = 0;
  maplog_scanned = 0;
  snap_cache_hits = 0;
  snap_cache_misses = 0;
  pages_allocated = 0;
  txn_commits = 0;
  txn_aborts = 0;
  cow_archived = 0;
  wal_appends = 0;
  wal_bytes = 0;
  wal_fsyncs = 0;
}

(* Materialize the live registry counters. *)
let snapshot () = {
  db_page_reads = C.get c_db_page_reads;
  db_page_writes = C.get c_db_page_writes;
  pagelog_reads = C.get c_pagelog_reads;
  pagelog_writes = C.get c_pagelog_writes;
  maplog_appends = C.get c_maplog_appends;
  maplog_scanned = C.get c_maplog_scanned;
  snap_cache_hits = C.get c_snap_cache_hits;
  snap_cache_misses = C.get c_snap_cache_misses;
  pages_allocated = C.get c_pages_allocated;
  txn_commits = C.get c_txn_commits;
  txn_aborts = C.get c_txn_aborts;
  cow_archived = C.get c_cow_archived;
  wal_appends = C.get c_wal_appends;
  wal_bytes = C.get c_wal_bytes;
  wal_fsyncs = C.get c_wal_fsyncs;
}

(* The legacy global handle.  The record itself no longer accumulates;
   it marks (by physical identity) "the live system-wide counters", and
   {!copy}/{!reset} on it read or reset the registry.  Pre-existing
   consumers all go through copy/diff, so they see exactly the values
   they used to. *)
let global = make ()

let reset t =
  if t == global then begin
    C.set c_db_page_reads 0;
    C.set c_db_page_writes 0;
    C.set c_pagelog_reads 0;
    C.set c_pagelog_writes 0;
    C.set c_maplog_appends 0;
    C.set c_maplog_scanned 0;
    C.set c_snap_cache_hits 0;
    C.set c_snap_cache_misses 0;
    C.set c_pages_allocated 0;
    C.set c_txn_commits 0;
    C.set c_txn_aborts 0;
    C.set c_cow_archived 0;
    C.set c_wal_appends 0;
    C.set c_wal_bytes 0;
    C.set c_wal_fsyncs 0;
    (* The combined page-read total and the heat matrix partition the
       per-device counters just zeroed: zero them together or sys_heat
       would no longer sum to storage.page_reads. *)
    C.reset_heat ()
  end
  else begin
    t.db_page_reads <- 0;
    t.db_page_writes <- 0;
    t.pagelog_reads <- 0;
    t.pagelog_writes <- 0;
    t.maplog_appends <- 0;
    t.maplog_scanned <- 0;
    t.snap_cache_hits <- 0;
    t.snap_cache_misses <- 0;
    t.pages_allocated <- 0;
    t.txn_commits <- 0;
    t.txn_aborts <- 0;
    t.cow_archived <- 0;
    t.wal_appends <- 0;
    t.wal_bytes <- 0;
    t.wal_fsyncs <- 0
  end

let copy t = if t == global then snapshot () else { t with db_page_reads = t.db_page_reads }

(* a - b, fieldwise: used to attribute counter deltas to a code region. *)
let diff a b = {
  db_page_reads = a.db_page_reads - b.db_page_reads;
  db_page_writes = a.db_page_writes - b.db_page_writes;
  pagelog_reads = a.pagelog_reads - b.pagelog_reads;
  pagelog_writes = a.pagelog_writes - b.pagelog_writes;
  maplog_appends = a.maplog_appends - b.maplog_appends;
  maplog_scanned = a.maplog_scanned - b.maplog_scanned;
  snap_cache_hits = a.snap_cache_hits - b.snap_cache_hits;
  snap_cache_misses = a.snap_cache_misses - b.snap_cache_misses;
  pages_allocated = a.pages_allocated - b.pages_allocated;
  txn_commits = a.txn_commits - b.txn_commits;
  txn_aborts = a.txn_aborts - b.txn_aborts;
  cow_archived = a.cow_archived - b.cow_archived;
  wal_appends = a.wal_appends - b.wal_appends;
  wal_bytes = a.wal_bytes - b.wal_bytes;
  wal_fsyncs = a.wal_fsyncs - b.wal_fsyncs;
}

(* Latency model for the simulated snapshot archive device.  The paper's
   Pagelog lives on a SATA SSD; the random-read latency is calibrated to
   the paper's own measurements (Fig 8: a cold iteration fetching the
   whole Orders table spends ~7s of I/O on ~45K pages, i.e. roughly
   250us per page-sized read, including buffer-manager overhead).
   Appends are sequential and cheaper.  DESIGN.md documents this
   substitution. *)
module Cost_model = struct
  (* lint: allow — calibration knobs, not metric totals *)
  let ssd_read_s = ref 250e-6
  let ssd_write_s = ref 25e-6

  (* An fsync barrier on the WAL device: the dominant cost of a durable
     commit (a SATA SSD flush is on the order of half a millisecond).
     Group commit amortizes it.  lint: allow — calibration knob, not a metric total *)
  let fsync_s = ref 500e-6

  (* When set, every archive (Pagelog) read also *spends* its modeled
     latency as real wall-clock time (Unix.sleepf outside any lock)
     instead of only counting it.  Off by default — tests and the
     evaluation harness keep modeled-only costs — and switched on by
     bench/concurrency, where concurrently sleeping domains are exactly
     the overlapped-I/O effect a real SATA SSD gives the paper's setup.
     lint: allow — calibration knob, not a metric total *)
  let real_read_latency = ref false

  (* Modeled I/O seconds attributable to a counter delta.  WAL appends
     are sequential writes, charged per page-equivalent of logged
     bytes; each fsync pays the full barrier. *)
  let io_seconds (d : t) =
    (float_of_int d.pagelog_reads *. !ssd_read_s)
    +. (float_of_int d.pagelog_writes *. !ssd_write_s)
    +. (float_of_int d.wal_bytes /. float_of_int Page.size *. !ssd_write_s)
    +. (float_of_int d.wal_fsyncs *. !fsync_s)
end

let pp ppf t =
  let t = if t == global then snapshot () else t in
  Fmt.pf ppf
    "@[<v>db_page_reads=%d db_page_writes=%d@ pagelog_reads=%d \
     pagelog_writes=%d@ maplog_appends=%d maplog_scanned=%d@ \
     snap_cache hits=%d misses=%d@ pages_allocated=%d commits=%d aborts=%d \
     cow_archived=%d@ wal_appends=%d wal_bytes=%d wal_fsyncs=%d@]"
    t.db_page_reads t.db_page_writes t.pagelog_reads t.pagelog_writes
    t.maplog_appends t.maplog_scanned t.snap_cache_hits t.snap_cache_misses
    t.pages_allocated t.txn_commits t.txn_aborts t.cow_archived
    t.wal_appends t.wal_bytes t.wal_fsyncs
