(** Global cost accounting for the storage manager and the Retro
    layer: the raw material for the per-iteration cost attribution
    (I/O / SPT build / query evaluation / UDF) used by the benchmarks.

    Counter state lives in the {!Obs.Metrics} registry — the root
    metric scope — reached through {!Obs.Scope} handles, so increments
    also charge whatever scope is active.  This module holds no
    independent mutable totals: it is a compatibility shim exposing the
    root scope under the historical record API.  Instrumentation points
    increment the [c_*] counters directly. *)

(** Scope-charged counters (one per record field below). *)
val c_db_page_reads : Obs.Scope.counter
val c_db_page_writes : Obs.Scope.counter
val c_pagelog_reads : Obs.Scope.counter
val c_pagelog_writes : Obs.Scope.counter
val c_maplog_appends : Obs.Scope.counter
val c_maplog_scanned : Obs.Scope.counter
val c_snap_cache_hits : Obs.Scope.counter
val c_snap_cache_misses : Obs.Scope.counter
val c_pages_allocated : Obs.Scope.counter
val c_txn_commits : Obs.Scope.counter
val c_txn_aborts : Obs.Scope.counter
val c_cow_archived : Obs.Scope.counter
val c_wal_appends : Obs.Scope.counter
val c_wal_bytes : Obs.Scope.counter
val c_wal_fsyncs : Obs.Scope.counter

(** Durability events outside the steady-state cost model. *)
val c_recoveries : Obs.Scope.counter
val c_torn_tail_discards : Obs.Scope.counter
val c_checksum_failures : Obs.Scope.counter

(** Archive-lifecycle events (VACUUM SNAPSHOTS / CHECKPOINT) and the
    transient-read-retry path. *)
val c_checkpoints : Obs.Scope.counter
val c_wal_truncated_bytes : Obs.Scope.counter
val c_snapshots_vacuumed : Obs.Scope.counter
val c_blocks_reclaimed : Obs.Scope.counter
val c_read_retries : Obs.Scope.counter

(** Record one current-state (resp. archive) page read: charges the
    per-device counter, the combined [storage.page_reads] total, and
    the (table, snapshot) heat cell of every active scope in one code
    path, so the heat matrix partitions the total exactly. *)
val record_db_page_read : unit -> unit
val record_pagelog_read : unit -> unit

type t = {
  mutable db_page_reads : int;      (** current-state pages (memory resident) *)
  mutable db_page_writes : int;
  mutable pagelog_reads : int;      (** snapshot-archive reads (simulated SSD) *)
  mutable pagelog_writes : int;
  mutable maplog_appends : int;
  mutable maplog_scanned : int;     (** maplog entries visited by SPT builds *)
  mutable snap_cache_hits : int;
  mutable snap_cache_misses : int;
  mutable pages_allocated : int;
  mutable txn_commits : int;
  mutable txn_aborts : int;
  mutable cow_archived : int;       (** pre-state pages copied out at commit *)
  mutable wal_appends : int;        (** records appended to the write-ahead log *)
  mutable wal_bytes : int;          (** bytes of WAL frames written *)
  mutable wal_fsyncs : int;         (** modeled fsync barriers *)
}

val make : unit -> t

(** Materialize the live registry counters into a plain record. *)
val snapshot : unit -> t

(** The legacy global handle: [copy global] materializes the live
    registry counters, [reset global] zeroes them.  The engine is
    single-process. *)
val global : t

val reset : t -> unit
val copy : t -> t

(** Fieldwise [a - b]: attribute counter deltas to a code region. *)
val diff : t -> t -> t

(** Latency model for the simulated archive device, calibrated to the
    paper's measured per-page I/O (see DESIGN.md). *)
module Cost_model : sig
  val ssd_read_s : float ref
  val ssd_write_s : float ref

  (** Modeled fsync barrier on the WAL device (amortized by group
      commit). *)
  val fsync_s : float ref

  (** When true, each archive read also sleeps [!ssd_read_s] of real
      wall-clock time (outside any lock), so concurrent readers overlap
      their simulated device waits like they would on a real SSD.  Off
      by default; bench/concurrency turns it on. *)
  val real_read_latency : bool ref

  (** Modeled I/O seconds for a counter delta. *)
  val io_seconds : t -> float
end

val pp : Format.formatter -> t -> unit
