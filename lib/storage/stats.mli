(** Global cost accounting for the storage manager and the Retro
    layer: the raw material for the per-iteration cost attribution
    (I/O / SPT build / query evaluation / UDF) used by the benchmarks.

    Counter state lives in the {!Obs.Metrics} registry; this module is
    a compatibility shim exposing it under the historical record API.
    Instrumentation points increment the [c_*] counters directly. *)

(** Registry-backed counters (one per record field below). *)
val c_db_page_reads : Obs.Metrics.Counter.t
val c_db_page_writes : Obs.Metrics.Counter.t
val c_pagelog_reads : Obs.Metrics.Counter.t
val c_pagelog_writes : Obs.Metrics.Counter.t
val c_maplog_appends : Obs.Metrics.Counter.t
val c_maplog_scanned : Obs.Metrics.Counter.t
val c_snap_cache_hits : Obs.Metrics.Counter.t
val c_snap_cache_misses : Obs.Metrics.Counter.t
val c_pages_allocated : Obs.Metrics.Counter.t
val c_txn_commits : Obs.Metrics.Counter.t
val c_txn_aborts : Obs.Metrics.Counter.t
val c_cow_archived : Obs.Metrics.Counter.t
val c_wal_appends : Obs.Metrics.Counter.t
val c_wal_bytes : Obs.Metrics.Counter.t
val c_wal_fsyncs : Obs.Metrics.Counter.t

(** Durability events outside the steady-state cost model. *)
val c_recoveries : Obs.Metrics.Counter.t
val c_torn_tail_discards : Obs.Metrics.Counter.t
val c_checksum_failures : Obs.Metrics.Counter.t

type t = {
  mutable db_page_reads : int;      (** current-state pages (memory resident) *)
  mutable db_page_writes : int;
  mutable pagelog_reads : int;      (** snapshot-archive reads (simulated SSD) *)
  mutable pagelog_writes : int;
  mutable maplog_appends : int;
  mutable maplog_scanned : int;     (** maplog entries visited by SPT builds *)
  mutable snap_cache_hits : int;
  mutable snap_cache_misses : int;
  mutable pages_allocated : int;
  mutable txn_commits : int;
  mutable txn_aborts : int;
  mutable cow_archived : int;       (** pre-state pages copied out at commit *)
  mutable wal_appends : int;        (** records appended to the write-ahead log *)
  mutable wal_bytes : int;          (** bytes of WAL frames written *)
  mutable wal_fsyncs : int;         (** modeled fsync barriers *)
}

val make : unit -> t

(** Materialize the live registry counters into a plain record. *)
val snapshot : unit -> t

(** The legacy global handle: [copy global] materializes the live
    registry counters, [reset global] zeroes them.  The engine is
    single-process. *)
val global : t

val reset : t -> unit
val copy : t -> t

(** Fieldwise [a - b]: attribute counter deltas to a code region. *)
val diff : t -> t -> t

(** Latency model for the simulated archive device, calibrated to the
    paper's measured per-page I/O (see DESIGN.md). *)
module Cost_model : sig
  val ssd_read_s : float ref
  val ssd_write_s : float ref

  (** Modeled fsync barrier on the WAL device (amortized by group
      commit). *)
  val fsync_s : float ref

  (** Modeled I/O seconds for a counter delta. *)
  val io_seconds : t -> float
end

val pp : Format.formatter -> t -> unit
