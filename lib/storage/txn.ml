(* Transactions with page-level before-images.

   A transaction overlays private copies of the pages it writes; readers
   of the committed state (including Retro snapshot queries, which run as
   read-only transactions in the paper's MVCC scheme) never observe
   uncommitted writes.  At commit the before-images are handed to the
   pager's pre-commit hook — the point where Retro archives COW
   pre-states — and the after-images are installed. *)

type state = Active | Committed | Aborted

type entry = {
  before : Bytes.t option; (* committed image at first write; None = fresh page id *)
  after : Bytes.t;         (* private mutable working copy *)
}

type t = {
  pager : Pager.t;
  writes : (int, entry) Hashtbl.t;
  mutable reserved : int list; (* page ids reserved by this txn *)
  mutable freed : int list;    (* page ids to release at commit *)
  mutable state : state;
}

let begin_txn pager =
  { pager; writes = Hashtbl.create 16; reserved = []; freed = []; state = Active }

let check_active t =
  if t.state <> Active then invalid_arg "Txn: transaction is not active"

(* Transaction-local read: own writes first, then committed state. *)
let read t pid =
  match Hashtbl.find_opt t.writes pid with
  | Some e -> e.after
  | None -> Pager.read_committed t.pager pid

let read_ctx t : Pager.read = fun pid -> read t pid

(* Mutable image of [pid]; the first touch copies the committed image and
   records it as the before-image. *)
let write t pid =
  check_active t;
  match Hashtbl.find_opt t.writes pid with
  | Some e -> e.after
  | None ->
    let before = Pager.read_committed t.pager pid in
    let after = Bytes.copy before in
    Hashtbl.add t.writes pid { before = Some before; after };
    after

(* Allocate a page inside the transaction.  If the pager recycles an id,
   the old committed image becomes the before-image so that COW can
   preserve it for older snapshots. *)
let alloc t kind =
  check_active t;
  let pid, old = Pager.reserve t.pager in
  t.reserved <- pid :: t.reserved;
  let after = Page.create kind in
  Hashtbl.add t.writes pid { before = old; after };
  pid

let free t pid =
  check_active t;
  t.freed <- pid :: t.freed

let dirty_count t = Hashtbl.length t.writes

(* Commit ordering: pre-commit hook (Retro archives COW pre-states),
   then the WAL record + barrier, then install.  A hook that raises
   leaves nothing logged or installed; a crash inside the WAL append
   models process death, where the in-memory archive appends die with
   the process.  The same [entries] list feeds the hook and the WAL, so
   the logged write order equals the runtime event order — which is what
   makes WAL replay reproduce Retro state deterministically. *)
let commit t =
  check_active t;
  (* The whole commit body runs as the pager's writer: concurrent read
     statements (which hold the lock in read mode) either see the state
     before every install or after all of them, never a torn commit. *)
  Pager.with_write_lock t.pager (fun () ->
      let entries = Hashtbl.fold (fun pid (e : entry) acc -> (pid, e) :: acc) t.writes [] in
      let events = List.map (fun (pid, (e : entry)) -> { Pager.pid; before = e.before }) entries in
      t.pager.Pager.pre_commit_hook events;
      (match t.pager.Pager.wal with
       | Some w when entries <> [] || t.freed <> [] ->
         w.Pager.wal_commit
           ~writes:(List.map (fun (pid, (e : entry)) -> (pid, e.after)) entries)
           ~freed:t.freed;
         w.Pager.wal_barrier ()
       | _ -> ());
      List.iter (fun (pid, (e : entry)) -> Pager.install t.pager pid e.after) entries;
      List.iter (fun pid -> Pager.release t.pager pid) t.freed);
  t.state <- Committed;
  Obs.Scope.incr Stats.c_txn_commits

let abort t =
  check_active t;
  List.iter (fun pid -> Pager.unreserve t.pager pid) t.reserved;
  t.state <- Aborted;
  Obs.Scope.incr Stats.c_txn_aborts

let is_active t = t.state = Active

(* Run [f] in a fresh transaction, committing on success and aborting if
   [f] raises. *)
let with_txn pager f =
  let t = begin_txn pager in
  match f t with
  | v ->
    commit t;
    v
  | exception e ->
    if is_active t then abort t;
    raise e
