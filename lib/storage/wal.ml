(* Append-only write-ahead log for the current-state database and the
   snapshot archive.

   File layout:

     header   = magic "RQLWAL01" (8 bytes) | u32 LE format version
     frame    = u8 kind | u32 LE payload length | u32 LE CRC32(payload) | payload
     kind 1   = Commit  : u32 nwrites, then per write (u32 pid, u32 len,
                bytes), u32 nfreed, then u32 per freed pid
     kind 2   = Declare : u32 db_pages, u64 LE (IEEE-754 bits of ts)
     kind 3   = Checkpoint : u32 seq — everything before this frame is
                durably materialized in the checkpoint image of the same
                sequence number (see Sqldb.Ckpt); recovery restores that
                image and replays only the frames after it

   Only commits (page after-images + freed ids) and snapshot
   declarations are logged — never Pagelog/Maplog appends.  Recovery
   replays the commit sequence through the pager's pre-commit hook with
   before-images reconstructed from the committed state being rebuilt,
   which reproduces the Retro archive byte-for-byte because the logged
   write order equals the runtime event order (Txn.commit feeds both
   from one list).

   Durability is modeled, not real: [barrier] flushes buffered frames to
   the file and charges one fsync through Stats.Cost_model; group commit
   ([group_commit] > 1) batches barriers so several transactions share
   one fsync, at the cost of losing the unflushed tail in a crash.  A
   torn or bit-flipped tail is detected by the per-frame CRC and
   truncated away — the atomic commit boundary. *)

let magic = "RQLWAL01"
let version = 1
let header_size = 12

exception Error of string
(** The file is not a WAL: bad magic, bad version, or a header too
    short to identify.  (A damaged *tail* is not an error — recovery
    truncates it.) *)

type record =
  | Commit of { writes : (int * Bytes.t) list; freed : int list }
  | Declare of { db_pages : int; ts : float }
  | Checkpoint of { seq : int }

type t = {
  path : string;
  mutable oc : out_channel option;
  pending : Buffer.t; (* frames appended but not yet flushed *)
  mutable pending_barriers : int;
  mutable group_commit : int; (* barriers per real flush+fsync *)
  mutable fault : Fault.t option;
  mutable appends : int; (* per-instance mirrors of the global counters *)
  mutable bytes_logged : int;
  mutable fsyncs : int;
  mutable since_ckpt : int; (* frame bytes appended since the last checkpoint *)
}

type status = {
  st_path : string;
  st_group_commit : int;
  st_appends : int;
  st_bytes : int;
  st_fsyncs : int;
  st_pending_bytes : int;
  st_since_checkpoint : int; (* frame bytes logged since the last checkpoint *)
}

type report = {
  rep_commits : int;
  rep_declares : int;
  rep_valid_bytes : int;
  rep_total_bytes : int;
  rep_torn : bool;    (* incomplete final frame (crash mid-write) *)
  rep_corrupt : bool; (* checksum/decode failure in the tail *)
  rep_checkpoint : int option; (* seq of the last checkpoint frame, if any *)
}

(* --- binary helpers ----------------------------------------------------- *)

let add_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)

let get_u32 (b : Bytes.t) off = Int32.to_int (Bytes.get_int32_le b off) land 0xffffffff

(* --- lifecycle ----------------------------------------------------------- *)

let write_header oc =
  output_string oc magic;
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int version);
  output_bytes oc b;
  flush oc

let make path oc group_commit =
  { path;
    oc = Some oc;
    pending = Buffer.create 4096;
    pending_barriers = 0;
    group_commit;
    fault = None;
    appends = 0;
    bytes_logged = 0;
    fsyncs = 0;
    since_ckpt = 0 }

(* Create a fresh WAL at [path], truncating anything there. *)
let create ?(group_commit = 1) ~path () =
  let oc = open_out_bin path in
  write_header oc;
  make path oc group_commit

(* Reopen an existing (recovered, truncated) WAL for appending. *)
let open_append ?(group_commit = 1) ~path () =
  let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
  make path oc group_commit

let set_fault t f = t.fault <- f
let fault t = t.fault
let set_group_commit t n = t.group_commit <- max 1 n
let path t = t.path
let bytes_since_checkpoint t = t.since_ckpt

let status t =
  { st_path = t.path;
    st_group_commit = t.group_commit;
    st_appends = t.appends;
    st_bytes = t.bytes_logged;
    st_fsyncs = t.fsyncs;
    st_pending_bytes = Buffer.length t.pending;
    st_since_checkpoint = t.since_ckpt }

(* --- the write path (every step is a fault-injection point) ------------- *)

(* Simulated process death at an armed crash point.  With [torn], a
   seeded strict prefix of the unflushed frames reaches the file first —
   the torn final block recovery must detect and truncate. *)
let crash_now t ~torn =
  (match t.oc with
   | Some oc ->
     (if torn && Buffer.length t.pending > 0 then begin
        let len = Fault.torn_length (Option.get t.fault) ~len:(Buffer.length t.pending) in
        output_string oc (String.sub (Buffer.contents t.pending) 0 len)
      end);
     close_out_noerr oc;
     t.oc <- None
   | None -> ());
  Buffer.clear t.pending;
  raise Fault.Crash

let tick t =
  match t.fault with
  | None -> ()
  | Some f ->
    (match Fault.tick f with
     | Some torn -> crash_now t ~torn
     | None -> ())

let check_open t =
  match t.oc with
  | Some oc -> oc
  | None -> raise (Error (Printf.sprintf "Wal %s: log is closed" t.path))

let encode_record r =
  let buf = Buffer.create 256 in
  (match r with
   | Commit { writes; freed } ->
     add_u32 buf (List.length writes);
     List.iter
       (fun (pid, b) ->
         add_u32 buf pid;
         add_u32 buf (Bytes.length b);
         Buffer.add_bytes buf b)
       writes;
     add_u32 buf (List.length freed);
     List.iter (fun pid -> add_u32 buf pid) freed
   | Declare { db_pages; ts } ->
     add_u32 buf db_pages;
     Buffer.add_int64_le buf (Int64.bits_of_float ts)
   | Checkpoint { seq } -> add_u32 buf seq);
  let kind = match r with Commit _ -> 1 | Declare _ -> 2 | Checkpoint _ -> 3 in
  (kind, Buffer.to_bytes buf)

let append t r =
  ignore (check_open t);
  tick t;
  let kind, payload = encode_record r in
  Buffer.add_char t.pending (Char.chr kind);
  add_u32 t.pending (Bytes.length payload);
  add_u32 t.pending (Crc32.bytes payload);
  Buffer.add_bytes t.pending payload;
  let frame_bytes = 9 + Bytes.length payload in
  t.appends <- t.appends + 1;
  t.bytes_logged <- t.bytes_logged + frame_bytes;
  t.since_ckpt <- t.since_ckpt + frame_bytes;
  Obs.Scope.incr Stats.c_wal_appends;
  Obs.Scope.add Stats.c_wal_bytes frame_bytes

let flush_pending t =
  if Buffer.length t.pending > 0 then begin
    let oc = check_open t in
    tick t;
    output_string oc (Buffer.contents t.pending);
    flush oc;
    Buffer.clear t.pending
  end

(* The modeled fsync: no host syscall (the device is simulated), just
   the barrier's cost charged through Stats.Cost_model. *)
let modeled_fsync t =
  tick t;
  t.fsyncs <- t.fsyncs + 1;
  Obs.Scope.incr Stats.c_wal_fsyncs

(* Durability point after a commit or declare.  Under group commit the
   flush+fsync only happens every [group_commit] barriers — the batched
   transactions share one fsync, and all of them are lost together if
   the process dies before the batch flushes. *)
let barrier t =
  ignore (check_open t);
  t.pending_barriers <- t.pending_barriers + 1;
  if t.pending_barriers >= t.group_commit && Buffer.length t.pending > 0 then begin
    flush_pending t;
    modeled_fsync t;
    t.pending_barriers <- 0
  end

(* Force the pending tail out regardless of group commit. *)
let sync t =
  if Buffer.length t.pending > 0 then begin
    flush_pending t;
    modeled_fsync t
  end;
  t.pending_barriers <- 0

(* --- checkpoint truncation ----------------------------------------------- *)

(* An explicit injection point for the lifecycle protocols (checkpoint
   image write, Pagelog compaction): each call is one observed
   write-path operation of the attached injector, so the crash matrix
   can kill the process at every step of a vacuum or checkpoint. *)
let injection_point t = tick t

(* Truncate the log behind a durably materialized checkpoint: write a
   fresh log (header + Checkpoint frame) to a temp file and rename it
   over [path].  The rename is the commit point — before it the old log
   (complete record of every commit) is in force, after it recovery
   starts from the checkpoint image of [seq].  Callers must have made
   the matching image durable *before* calling (see Sqldb.Ckpt for the
   whole protocol).  Returns the frame bytes dropped from the log. *)
let truncate_to_checkpoint t ~seq =
  sync t;
  let old_size = (Unix.stat t.path).Unix.st_size in
  tick t;
  let tmp = t.path ^ ".swap" in
  let oc = open_out_bin tmp in
  write_header oc;
  let kind, payload = encode_record (Checkpoint { seq }) in
  output_char oc (Char.chr kind);
  let hdr = Buffer.create 8 in
  add_u32 hdr (Bytes.length payload);
  add_u32 hdr (Crc32.bytes payload);
  Buffer.output_buffer oc hdr;
  output_bytes oc payload;
  flush oc;
  close_out oc;
  tick t;
  (* swap the live channel to the new log *)
  (match t.oc with
   | Some oc ->
     close_out_noerr oc;
     t.oc <- None
   | None -> ());
  Sys.rename tmp t.path; (* commit point *)
  t.oc <- Some (open_out_gen [ Open_append; Open_binary ] 0o644 t.path);
  modeled_fsync t;
  let new_size = (Unix.stat t.path).Unix.st_size in
  let dropped = max 0 (old_size - new_size) in
  t.since_ckpt <- 0;
  t.appends <- t.appends + 1;
  t.bytes_logged <- t.bytes_logged + 9 + Bytes.length payload;
  Obs.Scope.add Stats.c_wal_truncated_bytes dropped;
  dropped

let close t =
  match t.oc with
  | None -> ()
  | Some oc ->
    sync t;
    close_out oc;
    t.oc <- None

(* Wire this WAL into a pager: Txn.commit and Retro.declare log through
   the sink. *)
let attach t (pager : Pager.t) =
  pager.Pager.wal <-
    Some
      { Pager.wal_commit = (fun ~writes ~freed -> append t (Commit { writes; freed }));
        wal_declare = (fun ~db_pages ~ts -> append t (Declare { db_pages; ts }));
        wal_barrier = (fun () -> barrier t) }

(* --- recovery ------------------------------------------------------------ *)

exception Bad_record (* local: payload failed to decode *)

let decode_record kind (payload : Bytes.t) =
  let pos = ref 0 in
  let len = Bytes.length payload in
  let need n = if !pos + n > len then raise Bad_record in
  let u32 () =
    need 4;
    let v = get_u32 payload !pos in
    pos := !pos + 4;
    v
  in
  let raw n =
    need n;
    let b = Bytes.sub payload !pos n in
    pos := !pos + n;
    b
  in
  let r =
    match kind with
    | 1 ->
      let nwrites = u32 () in
      if nwrites > len then raise Bad_record;
      let writes =
        List.init nwrites (fun _ ->
            let pid = u32 () in
            let blen = u32 () in
            (pid, raw blen))
      in
      let nfreed = u32 () in
      if nfreed > len then raise Bad_record;
      let freed = List.init nfreed (fun _ -> u32 ()) in
      Commit { writes; freed }
    | 2 ->
      let db_pages = u32 () in
      need 8;
      let ts = Int64.float_of_bits (Bytes.get_int64_le payload !pos) in
      pos := !pos + 8;
      Declare { db_pages; ts }
    | 3 ->
      let seq = u32 () in
      Checkpoint { seq }
    | _ -> raise Bad_record
  in
  if !pos <> len then raise Bad_record;
  r

let read_exact ic n =
  let b = Bytes.create n in
  really_input ic b 0 n;
  b

(* Scan the log, returning every record up to the last complete,
   checksum-valid frame.  A short or checksum-failing tail marks the
   report torn/corrupt; the file is truncated to the valid prefix so a
   subsequent [open_append] writes from a consistent boundary. *)
let recover ~path =
  let ic = open_in_bin path in
  let total = in_channel_length ic in
  let records = ref [] in
  let commits = ref 0 in
  let declares = ref 0 in
  let checkpoint = ref None in
  let valid = ref header_size in
  let torn = ref false in
  let corrupt = ref false in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ (fun () ->
    if total < header_size then
      raise (Error (Printf.sprintf "Wal %s: too short to be a log" path));
    let hdr = read_exact ic header_size in
    if Bytes.sub_string hdr 0 8 <> magic then
      raise (Error (Printf.sprintf "Wal %s: bad magic" path));
    let v = get_u32 hdr 8 in
    if v <> version then
      raise (Error (Printf.sprintf "Wal %s: unsupported format version %d" path v));
    let running = ref true in
    while !running do
      match input_char ic with
      | exception End_of_file -> running := false (* clean end *)
      | kind_ch ->
        let kind = Char.code kind_ch in
        (match
           let frame_hdr = read_exact ic 8 in
           let plen = get_u32 frame_hdr 0 in
           let crc = get_u32 frame_hdr 4 in
           if plen > total - pos_in ic then raise End_of_file;
           (plen, crc, read_exact ic plen)
         with
         | exception End_of_file ->
           (* incomplete final frame: the classic torn write *)
           torn := true;
           running := false
         | plen, crc, payload ->
           if Crc32.bytes payload <> crc then begin
             corrupt := true;
             running := false
           end
           else begin
             match decode_record kind payload with
             | exception Bad_record ->
               corrupt := true;
               running := false
             | r ->
               records := r :: !records;
               (match r with
                | Commit _ -> incr commits
                | Declare _ -> incr declares
                | Checkpoint { seq } -> checkpoint := Some seq);
               valid := !valid + 9 + plen
           end)
    done);
  if !torn || !corrupt then begin
    Obs.Scope.incr Stats.c_torn_tail_discards;
    Unix.truncate path !valid
  end;
  ( List.rev !records,
    { rep_commits = !commits;
      rep_declares = !declares;
      rep_valid_bytes = !valid;
      rep_total_bytes = total;
      rep_torn = !torn;
      rep_corrupt = !corrupt;
      rep_checkpoint = !checkpoint } )

(* Re-drive the recovered commit/declare sequence against a fresh pager.

   Before-images are reconstructed from the committed state being
   rebuilt ([Pager.peek_committed]): at replay time, a recycled id's
   previous committed content is exactly what the original transaction
   overwrote, and a brand-new id peeks as [None] — so the pre-commit
   hook (Retro's COW archiver) sees the same event stream it saw at
   runtime, in the same order, and the archive comes back
   byte-for-byte.

   The free list is reconstructed alongside: each commit's freed pids
   join it, and pids a later commit writes leave it (they were
   recycled).  [declare] is the caller's snapshot-boundary callback
   (Retro.declare_at), invoked with the logged db_pages/ts rather than
   the replayed pager's n_pages, which can legitimately differ (aborted
   reservations grow n_pages without ever being logged). *)
let replay ~(pager : Pager.t) ~declare records =
  (* Seed from the pager's current free list: when replay starts from a
     restored checkpoint image (rather than an empty pager), the image's
     free list must survive into the replayed suffix. *)
  let free = ref pager.Pager.free_list in
  List.iter
    (fun r ->
      match r with
      | Commit { writes; freed } ->
        let events =
          List.map
            (fun (pid, _) -> { Pager.pid; before = Pager.peek_committed pager pid })
            writes
        in
        pager.Pager.pre_commit_hook events;
        List.iter (fun (pid, after) -> Pager.install pager pid after) writes;
        let written = List.map fst writes in
        free := List.filter (fun p -> not (List.mem p written)) !free;
        free := freed @ !free
      | Declare { db_pages; ts } -> declare ~db_pages ~ts
      | Checkpoint _ -> () (* a boundary marker; the image was restored by the caller *))
    records;
  pager.Pager.free_list <- !free
