(** Append-only write-ahead log for the current-state database and the
    snapshot archive.

    Only commits (page after-images + freed ids) and snapshot
    declarations are logged; recovery re-drives them through the
    pager's pre-commit hook, which rebuilds the Retro archive
    deterministically (see {!replay}).  Durability is modeled: a
    barrier flushes buffered frames and charges one fsync through
    {!Stats.Cost_model}; group commit batches barriers.  Per-frame
    CRC32 checksums let {!recover} detect a torn or bit-flipped tail
    and truncate to the last complete record (the atomic commit
    boundary).

    Assumes serialized transactions (one writer), which is how the
    engine runs; interleaved commits would need LSNs and txn ids. *)

exception Error of string
(** The file is not a usable WAL (bad magic / version / truncated
    header).  A damaged tail is not an error — recovery truncates it
    and reports it in the {!report}. *)

type record =
  | Commit of { writes : (int * Bytes.t) list; freed : int list }
  | Declare of { db_pages : int; ts : float }
  | Checkpoint of { seq : int }
      (** Everything before this frame is durably materialized in the
          checkpoint image of the same sequence number; recovery
          restores that image and replays only the frames after it. *)

type t

type status = {
  st_path : string;
  st_group_commit : int;
  st_appends : int;
  st_bytes : int;
  st_fsyncs : int;
  st_pending_bytes : int; (** frames buffered but not yet flushed *)
  st_since_checkpoint : int; (** frame bytes logged since the last checkpoint *)
}

type report = {
  rep_commits : int;
  rep_declares : int;
  rep_valid_bytes : int;
  rep_total_bytes : int;
  rep_torn : bool;    (** incomplete final frame (crash mid-write) *)
  rep_corrupt : bool; (** checksum/decode failure in the tail *)
  rep_checkpoint : int option; (** seq of the last checkpoint frame, if any *)
}

(** Create a fresh WAL at [path] (truncates).  [group_commit] is the
    number of commit barriers batched per flush+fsync (default 1 =
    every commit durable). *)
val create : ?group_commit:int -> path:string -> unit -> t

(** Reopen a recovered (truncated) WAL for appending. *)
val open_append : ?group_commit:int -> path:string -> unit -> t

(** Attach a fault injector to the write path (appends, flushes and
    fsyncs become crash points). *)
val set_fault : t -> Fault.t option -> unit

(** The attached fault injector, if any (the lifecycle protocols route
    their injection points through it). *)
val fault : t -> Fault.t option

val set_group_commit : t -> int -> unit
val status : t -> status

(** The log's file path (checkpoint images live beside it). *)
val path : t -> string

(** Frame bytes appended since the last checkpoint truncation — the
    auto-checkpoint trigger input and the recovery-replay bound. *)
val bytes_since_checkpoint : t -> int

(** One explicit fault-injection point: observed as a write-path
    operation by the attached injector, so the crash matrix can kill
    the process at every step of a vacuum or checkpoint. *)
val injection_point : t -> unit

(** Truncate the log behind a durably materialized checkpoint: write a
    fresh log (header + [Checkpoint] frame for [seq]) to a temp file
    and atomically rename it over the log — the commit point of the
    checkpoint protocol.  The caller must have made the matching image
    durable first (see Sqldb.Ckpt).  Returns the frame bytes dropped
    (counted into [storage.wal_truncated_bytes]). *)
val truncate_to_checkpoint : t -> seq:int -> int

(** Append a record to the pending buffer (not yet durable). *)
val append : t -> record -> unit

(** Durability point: under group commit, flushes + charges an fsync
    only every [group_commit]-th barrier. *)
val barrier : t -> unit

(** Force the pending tail out regardless of group commit. *)
val sync : t -> unit

(** [sync] then close the file. *)
val close : t -> unit

(** Install this WAL as the pager's [wal] sink, so {!Txn.commit} and
    Retro declarations log through it. *)
val attach : t -> Pager.t -> unit

(** Scan [path], returning every record up to the last complete,
    checksum-valid frame; truncates a torn/corrupt tail in place (and
    counts it in [storage.torn_tail_discards]).
    @raise Error when the file is not a WAL at all. *)
val recover : path:string -> record list * report

(** Re-drive recovered records against a fresh pager: commits run
    through the pre-commit hook (with before-images reconstructed via
    {!Pager.peek_committed}) then install; [declare] is called for each
    snapshot boundary with its logged [db_pages]/[ts].  Reconstructs
    the free list. *)
val replay :
  pager:Pager.t -> declare:(db_pages:int -> ts:float -> unit) -> record list -> unit
