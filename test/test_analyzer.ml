(* Static analyzer tests: the diagnostic catalogue (E0xx errors, W1xx
   warnings), source positions, the execution gate (errors raise before
   planning, warnings do not block), EXPLAIN LINT's row rendering, the
   RQL Qs/Qq contracts, and the two "fail before touching anything"
   regressions — DML atomicity and the zero-page-read Qq reject. *)

module R = Storage.Record
module E = Sqldb.Engine
module D = Sqldb.Diag
module M = Obs.Metrics

let get = M.Counter.get
let c_aerr = M.counter "sql.analyzer_errors"
let c_awarn = M.counter "sql.analyzer_warnings"
let c_page_writes = M.counter "storage.db_page_writes"
let c_maplog_scanned = M.counter "retro.maplog_scanned"
let c_pagelog_reads = M.counter "storage.pagelog_reads"

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

(* Shared fixture: two tables with an overlapping column name, a native
   index on t(a) for the sargability warning, and no registered UDFs. *)
let fresh () =
  let db = E.create ~snapshots:false () in
  ignore (E.exec db "CREATE TABLE t (a INTEGER, b TEXT)");
  ignore (E.exec db "CREATE TABLE u (a INTEGER, c REAL)");
  ignore (E.exec db "CREATE INDEX it ON t (a)");
  ignore (E.exec db "INSERT INTO t VALUES (1, 'x')");
  ignore (E.exec db "INSERT INTO t VALUES (2, 'y')");
  db

let codes db sql = List.map (fun d -> d.D.code) (E.analyze db sql)

(* One row of the diagnostic-catalogue table: statement -> exact codes. *)
let case name sql expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check (list string)) sql expected (codes (fresh ()) sql))

let catalogue =
  [ (* name resolution *)
    case "E001 unknown table" "SELECT * FROM nope" [ "E001" ];
    case "E001 unknown DELETE target" "DELETE FROM nope" [ "E001" ];
    case "E002 unknown column" "SELECT zzz FROM t" [ "E002" ];
    case "E002 qualified unknown column" "SELECT t.zzz FROM t" [ "E002" ];
    case "E002 unknown ORDER BY column" "SELECT a FROM t ORDER BY zzz" [ "E002" ];
    case "E002 unknown UPDATE column" "UPDATE t SET zzz = 1" [ "E002" ];
    case "E003 ambiguous column" "SELECT a FROM t, u" [ "E003" ];
    case "E004 unknown function" "SELECT frob(a) FROM t" [ "E004" ];
    (* arity and aggregate shape *)
    case "E005 builtin arity (too many)" "SELECT length(a, b) FROM t" [ "E005" ];
    case "E005 builtin arity (too few)" "SELECT substr(b) FROM t" [ "E005" ];
    case "E006 nested aggregate" "SELECT SUM(COUNT(a)) FROM t" [ "E006" ];
    case "E007 aggregate in WHERE" "SELECT a FROM t WHERE SUM(a) > 1" [ "E007" ];
    (* widths *)
    (* the indexed-column comparison also draws the sargability warning *)
    case "E008 wide scalar subquery" "SELECT a FROM t WHERE a = (SELECT a, c FROM u)"
      [ "E008"; "W101" ];
    case "E008 wide IN subquery" "SELECT a FROM t WHERE a IN (SELECT a, c FROM u)"
      [ "E008" ];
    case "E009 VALUES arity" "INSERT INTO t VALUES (1)" [ "E009" ];
    case "E009 INSERT-SELECT width" "INSERT INTO t SELECT a FROM u" [ "E009" ];
    case "E012 UNION width" "SELECT a FROM t UNION SELECT a, c FROM u" [ "E012" ];
    (* typing *)
    case "E010 non-integer AS OF" "SELECT AS OF 'three' a FROM t" [ "E010" ];
    case "E011 text LIMIT" "SELECT a FROM t LIMIT 'x'" [ "E011" ];
    case "E011 text OFFSET" "SELECT a FROM t LIMIT 1 OFFSET 'x'" [ "E011" ];
    (* sys_ namespace *)
    case "E013 CREATE in sys_ namespace" "CREATE TABLE sys_x (a INTEGER)" [ "E013" ];
    case "E013 DML against sys_ table" "DELETE FROM sys_metrics" [ "E013" ];
    (* RQL builtin outside a loop *)
    case "E020 current_snapshot outside loop" "SELECT a FROM t WHERE a = current_snapshot()"
      [ "E020" ];
    case "E005 current_snapshot with args" "SELECT current_snapshot(1) FROM t"
      [ "E005"; "E020" ];
    (* warnings *)
    case "W101 subquery bound defeats index" "SELECT a FROM t WHERE a = (SELECT a FROM u)"
      [ "W101" ];
    (* the analyzer's syntactic W102 is joined by the optimizer's proof
       (W201: the folded predicate collapses the scan to empty) *)
    case "W102 always-false predicate" "SELECT a FROM t WHERE 1 = 2" [ "W102"; "W201" ];
    case "W102 constant NULL predicate" "SELECT a FROM t WHERE NULL" [ "W102"; "W201" ];
    case "W103 cross-affinity comparison" "SELECT a FROM t WHERE a = 'x'" [ "W103" ];
    case "W104 duplicate CREATE column" "CREATE TABLE d (x INTEGER, x TEXT)" [ "W104" ];
    (* clean statements stay clean *)
    case "clean SELECT" "SELECT a, b FROM t WHERE a > 1 ORDER BY a LIMIT 1" [];
    case "clean join" "SELECT t.a, u.c FROM t, u WHERE t.a = u.a" [];
    case "clean aggregate" "SELECT b, COUNT(*) FROM t GROUP BY b HAVING COUNT(*) > 0" [] ]

let diag_detail =
  [ Alcotest.test_case "diagnostics carry positions" `Quick (fun () ->
        match E.analyze (fresh ()) "SELECT zzz FROM t" with
        | [ d ] ->
          Alcotest.(check string) "code" "E002" d.D.code;
          Alcotest.(check bool) "is error" true (D.is_error d);
          (match d.D.pos with
          | Some p ->
            Alcotest.(check int) "line" 1 p.Sqldb.Lexer.line;
            Alcotest.(check int) "col" 8 p.Sqldb.Lexer.col
          | None -> Alcotest.fail "expected a position");
          Alcotest.(check bool) "render form" true
            (contains (D.render d) "error E002 at 1:8:")
        | _ -> Alcotest.fail "expected exactly one diagnostic");
    Alcotest.test_case "errors order before warnings" `Quick (fun () ->
        (* source order within a severity, all errors first *)
        let cs = codes (fresh ()) "SELECT zzz FROM t WHERE 1 = 2" in
        Alcotest.(check (list string)) "order" [ "E002"; "W102" ] cs);
    Alcotest.test_case "EXPLAIN LINT analyzes the inner statement" `Quick (fun () ->
        Alcotest.(check (list string)) "unwrapped" [ "E002" ]
          (codes (fresh ()) "EXPLAIN LINT SELECT zzz FROM t")) ]

let explain_lint =
  [ Alcotest.test_case "EXPLAIN LINT renders diagnostics as rows" `Quick (fun () ->
        let db = fresh () in
        let res = E.exec db "EXPLAIN LINT SELECT zzz FROM t WHERE 1 = 2" in
        Alcotest.(check (array string)) "header"
          [| "severity"; "code"; "pos"; "message" |] res.E.columns;
        match res.E.rows with
        | [ [| R.Text sev1; R.Text c1; R.Text p1; R.Text m1 |];
            [| R.Text sev2; R.Text c2; _; R.Text _ |] ] ->
          Alcotest.(check string) "severity" "error" sev1;
          Alcotest.(check string) "code" "E002" c1;
          Alcotest.(check string) "pos" "1:21" p1;
          Alcotest.(check bool) "message" true (contains m1 "zzz");
          Alcotest.(check string) "warning severity" "warning" sev2;
          Alcotest.(check string) "warning code" "W102" c2
        | _ -> Alcotest.fail "expected an error row then a warning row");
    Alcotest.test_case "EXPLAIN LINT of a clean statement yields no rows" `Quick (fun () ->
        let res = E.exec (fresh ()) "EXPLAIN LINT SELECT a FROM t" in
        Alcotest.(check int) "no rows" 0 (List.length res.E.rows)) ]

let gate =
  [ Alcotest.test_case "exec raises a coded, positioned error" `Quick (fun () ->
        let db = fresh () in
        let e0 = get c_aerr in
        (try
           ignore (E.exec db "SELECT zzz FROM t");
           Alcotest.fail "expected the analyzer gate to raise"
         with E.Error msg ->
           Alcotest.(check bool) "code in message" true (contains msg "E002");
           Alcotest.(check bool) "position in message" true (contains msg "at 1:8"));
        Alcotest.(check int) "error counted" 1 (get c_aerr - e0));
    Alcotest.test_case "prepare is gated too" `Quick (fun () ->
        let db = fresh () in
        try
          ignore (E.prepare db "SELECT zzz FROM t WHERE a = ?");
          Alcotest.fail "expected prepare to raise"
        with E.Error msg -> Alcotest.(check bool) "code" true (contains msg "E002"));
    Alcotest.test_case "warned statement still executes" `Quick (fun () ->
        let db = fresh () in
        let w0 = get c_awarn in
        let res = E.exec db "SELECT a FROM t WHERE a = 'x'" in
        Alcotest.(check int) "runs (and matches nothing)" 0 (List.length res.E.rows);
        Alcotest.(check int) "warning counted" 1 (get c_awarn - w0));
    Alcotest.test_case "analyze alone does not touch the gate counters" `Quick (fun () ->
        let db = fresh () in
        let e0 = get c_aerr and w0 = get c_awarn in
        ignore (E.analyze db "SELECT zzz FROM t WHERE 1 = 2");
        Alcotest.(check int) "no errors counted" 0 (get c_aerr - e0);
        Alcotest.(check int) "no warnings counted" 0 (get c_awarn - w0)) ]

let atomicity =
  [ Alcotest.test_case "rejected UPDATE/DELETE touch no rows and no pages" `Quick
      (fun () ->
        let db = fresh () in
        let before = (E.exec db "SELECT a, b FROM t ORDER BY a").E.rows in
        let p0 = get c_page_writes in
        let rejected sql =
          try
            ignore (E.exec db sql);
            false
          with E.Error msg -> contains msg "E002"
        in
        Alcotest.(check bool) "UPDATE rejected" true (rejected "UPDATE t SET zzz = 1");
        Alcotest.(check bool) "UPDATE WHERE rejected" true
          (rejected "UPDATE t SET a = 9 WHERE zzz = 1");
        Alcotest.(check bool) "DELETE rejected" true (rejected "DELETE FROM t WHERE zzz = 1");
        Alcotest.(check int) "no page writes" 0 (get c_page_writes - p0);
        Alcotest.(check bool) "rows untouched" true
          ((E.exec db "SELECT a, b FROM t ORDER BY a").E.rows = before)) ]

(* The RQL contracts, via the engine front doors the loop mechanisms use. *)
let rql_contracts =
  [ Alcotest.test_case "Qq mode admits current_snapshot()" `Quick (fun () ->
        E.analyze_qq (fresh ()) "SELECT a FROM t WHERE a = current_snapshot()");
    Alcotest.test_case "E022 non-SELECT Qq" `Quick (fun () ->
        try
          E.analyze_qq (fresh ()) "DELETE FROM t";
          Alcotest.fail "expected E022"
        with E.Error msg -> Alcotest.(check bool) "code" true (contains msg "E022"));
    Alcotest.test_case "W106 Qq with its own AS OF" `Quick (fun () ->
        let db = fresh () in
        let w0 = get c_awarn in
        E.analyze_qq db "SELECT AS OF 1 a FROM t";
        Alcotest.(check int) "warned, not rejected" 1 (get c_awarn - w0));
    Alcotest.test_case "Qs must project one column (E021)" `Quick (fun () ->
        let db = fresh () in
        E.analyze_qs db "SELECT a FROM t";
        try
          E.analyze_qs db "SELECT a, b FROM t";
          Alcotest.fail "expected E021"
        with E.Error msg -> Alcotest.(check bool) "code" true (contains msg "E021"));
    Alcotest.test_case "non-SELECT Qs is E021" `Quick (fun () ->
        try
          E.analyze_qs (fresh ()) "DELETE FROM t";
          Alcotest.fail "expected E021"
        with E.Error msg -> Alcotest.(check bool) "code" true (contains msg "E021"));
    Alcotest.test_case "W105 non-integer Qs projection" `Quick (fun () ->
        let db = fresh () in
        let w0 = get c_awarn in
        E.analyze_qs db "SELECT b FROM t";
        Alcotest.(check int) "warned" 1 (get c_awarn - w0)) ]

let rql_gate =
  [ Alcotest.test_case "bad Qq fails before any snapshot work" `Quick (fun () ->
        let ctx = Rql.create () in
        ignore (Rql.exec_data ctx "CREATE TABLE t (x INTEGER)");
        for i = 1 to 3 do
          ignore (Rql.exec_data ctx (Printf.sprintf "INSERT INTO t VALUES (%d)" i));
          ignore (Rql.declare_snapshot ctx)
        done;
        (* a good run first, so the archive paths are warm and any page
           reads below would be attributable to the bad run *)
        ignore (Rql.collate_data ctx ~qs:"SELECT snap_id FROM SnapIds"
                  ~qq:"SELECT x FROM t" ~table:"Good");
        let m0 = get c_maplog_scanned and r0 = get c_pagelog_reads in
        (try
           ignore (Rql.collate_data ctx ~qs:"SELECT snap_id FROM SnapIds"
                     ~qq:"SELECT nope FROM t" ~table:"Bad");
           Alcotest.fail "expected the Qq gate to raise"
         with Rql.Error msg ->
           Alcotest.(check bool) "coded" true (contains msg "E002"));
        Alcotest.(check int) "no SPT builds" 0 (get c_maplog_scanned - m0);
        Alcotest.(check int) "no archive page reads" 0 (get c_pagelog_reads - r0);
        Alcotest.(check bool) "result table not created" true
          (try
             ignore (E.exec ctx.Rql.meta "SELECT * FROM Bad");
             false
           with E.Error _ -> true));
    Alcotest.test_case "bad Qs rejected before execution" `Quick (fun () ->
        let ctx = Rql.create () in
        ignore (Rql.exec_data ctx "CREATE TABLE t (x INTEGER)");
        ignore (Rql.declare_snapshot ctx);
        try
          ignore (Rql.collate_data ctx ~qs:"SELECT snap_id, name FROM SnapIds"
                    ~qq:"SELECT x FROM t" ~table:"T");
          Alcotest.fail "expected the Qs gate to raise"
        with Rql.Error msg -> Alcotest.(check bool) "coded" true (contains msg "E021")) ]

let () =
  Alcotest.run "analyzer"
    [ ("catalogue", catalogue);
      ("diagnostics", diag_detail);
      ("explain-lint", explain_lint);
      ("gate", gate);
      ("atomicity", atomicity);
      ("rql-contracts", rql_contracts);
      ("rql-gate", rql_gate) ]
