(* Backup/restore tests: a saved database reopens with its full snapshot
   history, AS OF queries and RQL mechanisms keep working, and new
   snapshots stack on top of the restored history. *)

module R = Storage.Record
module E = Sqldb.Engine

let value = Alcotest.testable R.pp_value R.equal_value

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let build_ctx () =
  let ctx = Rql.create () in
  let e sql = ignore (E.exec ctx.Rql.data sql) in
  e "CREATE TABLE LoggedIn (l_userid TEXT, l_time TEXT, l_country TEXT)";
  e
    "INSERT INTO LoggedIn VALUES ('UserA','2008-11-09 13:23:44','USA'), ('UserB','2008-11-09 \
     15:45:21','UK'), ('UserC','2008-11-09 15:45:21','USA')";
  ignore (Rql.declare_snapshot ~name:"s1" ctx);
  e "DELETE FROM LoggedIn WHERE l_userid = 'UserA'";
  ignore (Rql.declare_snapshot ~name:"s2" ctx);
  e "INSERT INTO LoggedIn VALUES ('UserD','2008-11-11 10:08:04','UK')";
  ignore (Rql.declare_snapshot ~name:"s3" ctx);
  ctx

let tests =
  [ Alcotest.test_case "db-level save/load preserves data" `Quick (fun () ->
        let db = E.create ~snapshots:false () in
        ignore (E.exec db "CREATE TABLE t (a INTEGER, b TEXT)");
        ignore (E.exec db "INSERT INTO t VALUES (1,'x'), (2,'y')");
        ignore (E.exec db "CREATE INDEX ia ON t (a)");
        let path = tmp "rql_test_db.img" in
        Sqldb.Backup.save db ~path;
        let db2 = Sqldb.Backup.load ~path in
        Alcotest.(check int) "rows" 2 (E.int_scalar db2 "SELECT COUNT(*) FROM t");
        Alcotest.(check value) "index works" (R.Text "y")
          (E.scalar db2 "SELECT b FROM t WHERE a = 2");
        (* the original is unaffected by writes to the copy *)
        ignore (E.exec db2 "DELETE FROM t");
        Alcotest.(check int) "original intact" 2 (E.int_scalar db "SELECT COUNT(*) FROM t");
        Sys.remove path);
    Alcotest.test_case "snapshot history survives a reload" `Quick (fun () ->
        let ctx = build_ctx () in
        let path = tmp "rql_test_ctx.img" in
        Rql.save ctx ~path;
        let ctx2 = Rql.load ~path in
        Alcotest.(check int) "snapids" 3
          (E.int_scalar ctx2.Rql.meta "SELECT COUNT(*) FROM SnapIds");
        Alcotest.(check int) "as of 1" 3
          (E.int_scalar ctx2.Rql.data "SELECT AS OF 1 COUNT(*) FROM LoggedIn");
        Alcotest.(check int) "as of 2" 2
          (E.int_scalar ctx2.Rql.data "SELECT AS OF 2 COUNT(*) FROM LoggedIn");
        Alcotest.(check value) "named snapshot" (R.Text "s2")
          (E.scalar ctx2.Rql.meta "SELECT snap_name FROM SnapIds WHERE snap_id = 2");
        Sys.remove path);
    Alcotest.test_case "mechanisms work on a restored context" `Quick (fun () ->
        let ctx = build_ctx () in
        let path = tmp "rql_test_ctx2.img" in
        Rql.save ctx ~path;
        let ctx2 = Rql.load ~path in
        let run =
          Rql.collate_data ctx2 ~qs:"SELECT snap_id FROM SnapIds"
            ~qq:"SELECT DISTINCT l_userid, current_snapshot() AS sid FROM LoggedIn"
            ~table:"T"
        in
        Alcotest.(check int) "rows" 8 run.Rql.Iter_stats.result_rows;
        (* the SQL-UDF form was re-registered too *)
        ignore
          (E.exec ctx2.Rql.meta
             "SELECT CollateData(snap_id, 'SELECT l_userid FROM LoggedIn', 'T2') FROM SnapIds");
        Alcotest.(check int) "udf rows" 8 (E.int_scalar ctx2.Rql.meta "SELECT COUNT(*) FROM T2");
        Sys.remove path);
    Alcotest.test_case "new snapshots stack on a restored history" `Quick (fun () ->
        let ctx = build_ctx () in
        let path = tmp "rql_test_ctx3.img" in
        Rql.save ctx ~path;
        let ctx2 = Rql.load ~path in
        ignore (E.exec ctx2.Rql.data "DELETE FROM LoggedIn WHERE l_userid = 'UserB'");
        let s4 = Rql.declare_snapshot ctx2 in
        Alcotest.(check int) "id continues" 4 s4;
        Alcotest.(check int) "as of 4" 2
          (E.int_scalar ctx2.Rql.data "SELECT AS OF 4 COUNT(*) FROM LoggedIn");
        (* COW still protects the restored snapshots *)
        Alcotest.(check int) "as of 3 unchanged" 3
          (E.int_scalar ctx2.Rql.data "SELECT AS OF 3 COUNT(*) FROM LoggedIn");
        Sys.remove path);
    Alcotest.test_case "open transaction blocks backup" `Quick (fun () ->
        let db = E.create () in
        ignore (E.exec db "CREATE TABLE t (a INTEGER)");
        ignore (E.exec db "BEGIN");
        Alcotest.(check bool) "raises" true
          (try
             Sqldb.Backup.save db ~path:(tmp "nope.img");
             false
           with Sqldb.Backup.Error _ -> true));
    Alcotest.test_case "garbage file rejected" `Quick (fun () ->
        let path = tmp "rql_garbage.img" in
        let oc = open_out_bin path in
        output_string oc "this is not a database";
        close_out oc;
        Alcotest.(check bool) "raises" true
          (try
             ignore (Sqldb.Backup.load ~path);
             false
           with Sqldb.Backup.Error _ -> true);
        Sys.remove path);
    Alcotest.test_case "truncated image rejected" `Quick (fun () ->
        let db = E.create () in
        ignore (E.exec db "CREATE TABLE t (a INTEGER)");
        ignore (E.exec db "INSERT INTO t VALUES (1), (2)");
        let path = tmp "rql_trunc.img" in
        Sqldb.Backup.save db ~path;
        let size = (Unix.stat path).Unix.st_size in
        Unix.truncate path (size - 5);
        Alcotest.(check bool) "raises on truncation" true
          (try
             ignore (Sqldb.Backup.load ~path);
             false
           with Sqldb.Backup.Error m ->
             (* the length check fires before Marshal sees any bytes *)
             Alcotest.(check bool) "typed as truncated" true
               (String.length m > 0);
             true);
        (* even losing a single byte is detected *)
        Sqldb.Backup.save db ~path;
        Unix.truncate path (size - 1);
        Alcotest.(check bool) "raises on 1-byte loss" true
          (try
             ignore (Sqldb.Backup.load ~path);
             false
           with Sqldb.Backup.Error _ -> true);
        Sys.remove path);
    Alcotest.test_case "bit-flipped image rejected by checksum" `Quick (fun () ->
        let db = E.create () in
        ignore (E.exec db "CREATE TABLE t (a INTEGER)");
        ignore (E.exec db "INSERT INTO t VALUES (1), (2), (3)");
        let path = tmp "rql_flip.img" in
        let f = Storage.Fault.create ~seed:17 () in
        (* ten seeded flips in the payload region: every one must be
           caught by the frame CRC before Marshal runs *)
        for _ = 1 to 10 do
          Sqldb.Backup.save db ~path;
          Alcotest.(check bool) "flip landed" true
            (Storage.Fault.flip_bit_in_file f ~path ~min_off:20 <> None);
          Alcotest.(check bool) "raises on corruption" true
            (try
               ignore (Sqldb.Backup.load ~path);
               false
             with Sqldb.Backup.Error _ -> true)
        done;
        (* a flip in the header is caught by magic/version checks *)
        Sqldb.Backup.save db ~path;
        let oc = open_out_gen [ Open_wronly; Open_binary ] 0o644 path in
        output_char oc 'X';
        close_out oc;
        Alcotest.(check bool) "bad magic rejected" true
          (try
             ignore (Sqldb.Backup.load ~path);
             false
           with Sqldb.Backup.Error _ -> true);
        Sys.remove path) ]

let () = Alcotest.run "backup" [ ("backup", tests) ]
