(* EXPLAIN ANALYZE / query-observability tests: exact per-operator row
   counts on seeded fixtures (scan, filter, join, aggregate), page-read
   deltas, AS OF agreeing with current-state on identical data, the
   zero-overhead guarantee when instrumentation is off, statement
   fingerprinting (sys_statements, including from inside an RQL Qq),
   the slow-query event log, and the per-mechanism RQL run report. *)

module R = Storage.Record
module E = Sqldb.Engine
module P = Sqldb.Plan
module F = Sqldb.Fingerprint

let e db sql = ignore (E.exec db sql)

let analysis_of db sql =
  ignore (E.exec db ("EXPLAIN ANALYZE " ^ sql));
  match E.last_analysis db with
  | Some az -> az
  | None -> Alcotest.failf "no analysis recorded for %s" sql

(* The (kind, rows) of the single operator with [kind]. *)
let op_rows (az : P.analysis) kind =
  match List.filter (fun (a : P.op_actual) -> a.P.a_kind = kind) az.P.az_ops with
  | [ a ] -> a.P.a_rows
  | l -> Alcotest.failf "expected one %s operator, got %d" kind (List.length l)

let op_of (az : P.analysis) kind =
  match List.filter (fun (a : P.op_actual) -> a.P.a_kind = kind) az.P.az_ops with
  | [ a ] -> a
  | l -> Alcotest.failf "expected one %s operator, got %d" kind (List.length l)

(* t: 10 rows (a=i, b=i); u: 3 rows (a=j, c as given). *)
let fixture () =
  let db = E.create () in
  e db "CREATE TABLE t (a INTEGER, b INTEGER)";
  e db "CREATE TABLE u (a INTEGER, c INTEGER)";
  for i = 1 to 10 do
    e db (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i i)
  done;
  e db "INSERT INTO u VALUES (1, -100), (2, 0), (3, 0)";
  db

let actuals =
  [ Alcotest.test_case "scan: exact row counts" `Quick (fun () ->
        let db = fixture () in
        let az = analysis_of db "SELECT * FROM t" in
        Alcotest.(check int) "result rows" 10 az.P.az_rows;
        Alcotest.(check int) "scan rows" 10 (op_rows az "scan");
        Alcotest.(check int) "output rows" 10 (op_rows az "output");
        Alcotest.(check int) "scan loops" 1 (op_of az "scan").P.a_loops);
    Alcotest.test_case "join + residual filter: exact rows and probes" `Quick (fun () ->
        let db = fixture () in
        let az = analysis_of db "SELECT * FROM t, u WHERE t.a = u.a AND t.b + u.c > 0" in
        (* join on a matches 3 of 10 outer rows; the residual kills the
           (1, -100) pair, leaving 2 *)
        Alcotest.(check int) "scan rows" 10 (op_rows az "scan");
        Alcotest.(check int) "join rows" 3 (op_rows az "hash_join");
        Alcotest.(check int) "probes = outer rows" 10 (op_of az "hash_join").P.a_probes;
        Alcotest.(check int) "filter rows" 2 (op_rows az "filter");
        Alcotest.(check int) "output rows" 2 (op_rows az "output");
        Alcotest.(check int) "result rows" 2 az.P.az_rows);
    Alcotest.test_case "aggregate: one row per group" `Quick (fun () ->
        let db = fixture () in
        let az = analysis_of db "SELECT a % 2, COUNT(*) FROM t GROUP BY a % 2" in
        Alcotest.(check int) "scan rows" 10 (op_rows az "scan");
        Alcotest.(check int) "aggregate rows" 2 (op_rows az "aggregate");
        Alcotest.(check int) "result rows" 2 az.P.az_rows);
    Alcotest.test_case "scan page-read delta matches the heap footprint" `Quick (fun () ->
        let db = fixture () in
        let pages =
          match E.scalar db "SELECT pages FROM sys_tables WHERE name = 't'" with
          | R.Int n -> n
          | v -> Alcotest.failf "expected int, got %s" (R.value_to_string v)
        in
        let az = analysis_of db "SELECT * FROM t" in
        Alcotest.(check int) "scan pages" pages (op_of az "scan").P.a_pages);
    Alcotest.test_case "operator ids are stable and unique" `Quick (fun () ->
        let db = fixture () in
        let az1 = analysis_of db "SELECT t.a FROM t, u WHERE t.a = u.a" in
        let az2 = analysis_of db "SELECT t.a FROM t, u WHERE t.a = u.a" in
        let ids az = List.map (fun (a : P.op_actual) -> a.P.a_id) az.P.az_ops in
        Alcotest.(check (list int)) "same ids across runs" (ids az1) (ids az2);
        let sorted = List.sort_uniq compare (ids az1) in
        Alcotest.(check int) "ids unique" (List.length (ids az1)) (List.length sorted)) ]

let as_of =
  [ Alcotest.test_case "AS OF actuals agree with current-state on identical data" `Quick
      (fun () ->
        let ctx = Rql.create () in
        let db = ctx.Rql.data in
        e db "CREATE TABLE t (a INTEGER, b INTEGER)";
        for i = 1 to 10 do
          e db (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i i)
        done;
        let sid = Rql.declare_snapshot ctx in
        let shape az =
          List.map (fun (a : P.op_actual) -> (a.P.a_kind, a.P.a_rows)) az.P.az_ops
        in
        let cur = analysis_of db "SELECT a, b FROM t WHERE b > 3" in
        let old = analysis_of db (Printf.sprintf "SELECT AS OF %d a, b FROM t WHERE b > 3" sid) in
        Alcotest.(check (list (pair string int))) "same per-op rows" (shape cur) (shape old);
        Alcotest.(check (option int)) "current has no snapshot" None cur.P.az_snapshot;
        Alcotest.(check (option int)) "AS OF records the snapshot" (Some sid) old.P.az_snapshot) ]

let off_path =
  [ Alcotest.test_case "instrumentation off leaves every slot untouched" `Quick (fun () ->
        let db = fixture () in
        let sql = "SELECT t.a FROM t, u WHERE t.a = u.a AND t.b > 0" in
        e db sql;
        e db sql;
        (* two executions through the plan cache, analyze off *)
        match E.cached_plan db ~key:sql with
        | None -> Alcotest.fail "statement plan not cached"
        | Some plan ->
          List.iter
            (fun (a : P.op_actual) ->
              Alcotest.(check int) (a.P.a_kind ^ " rows untouched") 0 a.P.a_rows;
              Alcotest.(check int) (a.P.a_kind ^ " loops untouched") 0 a.P.a_loops;
              Alcotest.(check int) (a.P.a_kind ^ " pages untouched") 0 a.P.a_pages;
              Alcotest.(check int) (a.P.a_kind ^ " probes untouched") 0 a.P.a_probes;
              Alcotest.(check (float 0.)) (a.P.a_kind ^ " time untouched") 0. a.P.a_elapsed_s)
            (P.actuals plan)) ]

let fingerprints =
  [ Alcotest.test_case "normalization folds literals, case and whitespace" `Quick (fun () ->
        Alcotest.(check string) "literals become ?"
          "select * from t where a = ? and b = ?"
          (F.normalize "SELECT * FROM T   WHERE a = 42 AND b = 'x'");
        Alcotest.(check string) "same statement, different constants"
          (F.normalize "select * from t where a = 1")
          (F.normalize "SELECT * FROM t WHERE a = 99"));
    Alcotest.test_case "sys_statements aggregates calls per fingerprint" `Quick (fun () ->
        F.reset ();
        let db = fixture () in
        e db "SELECT * FROM t WHERE a = 1";
        e db "SELECT * FROM t WHERE a = 2";
        e db "select * from T where a = 3";
        match F.find ~sql:"SELECT * FROM t WHERE a = 0" with
        | None -> Alcotest.fail "fingerprint not recorded"
        | Some st ->
          Alcotest.(check int) "three calls, one fingerprint" 3 st.F.calls;
          Alcotest.(check int) "rows accumulated" 3 st.F.rows;
          let calls =
            E.scalar db
              "SELECT calls FROM sys_statements WHERE query = \
               'select * from t where a = ?'"
          in
          (* the sys_statements SELECT itself is not yet recorded *)
          Alcotest.(check bool) "queryable via SQL" true (calls = R.Int 3));
    Alcotest.test_case "sys_statements is queryable inside an RQL Qq" `Quick (fun () ->
        F.reset ();
        let ctx = Rql.create () in
        e ctx.Rql.data "CREATE TABLE t (a INTEGER)";
        e ctx.Rql.data "INSERT INTO t VALUES (1)";
        ignore (Rql.declare_snapshot ctx);
        let run =
          Rql.collate_data ctx ~qs:"SELECT snap_id FROM SnapIds"
            ~qq:"SELECT query, calls FROM sys_statements" ~table:"StmtStats"
        in
        Alcotest.(check bool) "Qq saw recorded statements" true
          (run.Rql.Iter_stats.result_rows > 0)) ]

let slowlog =
  [ Alcotest.test_case "statements over the threshold log a structured event" `Quick
      (fun () ->
        Obs.Eventlog.clear ();
        let db = fixture () in
        E.set_slow_query_threshold db (Some 0.0);
        e db "SELECT * FROM t WHERE a = 7";
        E.set_slow_query_threshold db None;
        let slow =
          List.filter
            (fun (ev : Obs.Eventlog.event) -> ev.Obs.Eventlog.ev_kind = "slow_query")
            (Obs.Eventlog.events ())
        in
        Alcotest.(check bool) "at least one event" true (slow <> []);
        let ev = List.hd slow in
        let has k = List.mem_assoc k ev.Obs.Eventlog.ev_fields in
        Alcotest.(check bool) "duration field" true (has "duration_ms");
        Alcotest.(check bool) "fingerprint field" true (has "fingerprint");
        Alcotest.(check bool) "query field" true (has "query");
        (match List.assoc "query" ev.Obs.Eventlog.ev_fields with
        | Obs.Json.Str q ->
          Alcotest.(check string) "normalized text" "select * from t where a = ?" q
        | _ -> Alcotest.fail "query field is not a string"));
    Alcotest.test_case "no threshold, no events" `Quick (fun () ->
        Obs.Eventlog.clear ();
        let db = fixture () in
        e db "SELECT * FROM t";
        Alcotest.(check int) "event log empty" 0 (List.length (Obs.Eventlog.events ()))) ]

let run_report =
  [ Alcotest.test_case "analyzed RQL run accumulates actuals across iterations" `Quick
      (fun () ->
        let ctx = Rql.create () in
        let db = ctx.Rql.data in
        e db "CREATE TABLE t (a INTEGER, b INTEGER)";
        for i = 1 to 10 do
          e db (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i i)
        done;
        ignore (Rql.declare_snapshot ctx);
        ignore (Rql.declare_snapshot ctx);
        (* identical data in both snapshots *)
        ignore
          (Rql.collate_data ~analyze:true ctx ~qs:"SELECT snap_id FROM SnapIds"
             ~qq:"SELECT a FROM t" ~table:"Out");
        (match Rql.run_report () with
        | None -> Alcotest.fail "no run report"
        | Some r ->
          Alcotest.(check string) "mechanism" "CollateData" r.Rql.rr_mechanism;
          Alcotest.(check int) "iterations" 2 r.Rql.rr_iterations;
          let scan =
            match
              List.filter (fun (a : P.op_actual) -> a.P.a_kind = "scan") r.Rql.rr_ops
            with
            | [ a ] -> a
            | l -> Alcotest.failf "expected one scan op, got %d" (List.length l)
          in
          Alcotest.(check int) "scan rows sum over iterations" 20 scan.P.a_rows;
          Alcotest.(check int) "scan loops = iterations" 2 scan.P.a_loops);
        Alcotest.(check bool) "instrumentation restored off" false db.Sqldb.Db.analyze);
    Alcotest.test_case "analyzed run emits a counter track when tracing is on" `Quick
      (fun () ->
        Obs.Trace.clear ();
        Obs.Trace.set_enabled true;
        Fun.protect
          ~finally:(fun () -> Obs.Trace.set_enabled false)
          (fun () ->
            let ctx = Rql.create () in
            e ctx.Rql.data "CREATE TABLE t (a INTEGER)";
            e ctx.Rql.data "INSERT INTO t VALUES (1)";
            ignore (Rql.declare_snapshot ctx);
            ignore
              (Rql.collate_data ~analyze:true ctx ~qs:"SELECT snap_id FROM SnapIds"
                 ~qq:"SELECT a FROM t" ~table:"Out");
            let samples =
              List.filter
                (fun (c : Obs.Trace.counter_event) -> c.Obs.Trace.c_name = "rql.op_rows")
                (Obs.Trace.counter_events ())
            in
            Alcotest.(check int) "one sample per iteration" 1 (List.length samples);
            let values = (List.hd samples).Obs.Trace.c_values in
            Alcotest.(check bool) "per-operator series present" true
              (List.exists (fun (k, v) -> k = "op1 scan" && v = 1.) values))) ]

let () =
  Alcotest.run "explain_analyze"
    [ ("actuals", actuals);
      ("as_of", as_of);
      ("off_path", off_path);
      ("fingerprints", fingerprints);
      ("slowlog", slowlog);
      ("run_report", run_report) ]
