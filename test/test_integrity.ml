(* Integrity-checker tests: healthy databases pass (including after
   heavy churn and on restored backups), and seeded corruptions are
   detected.  Also used as a property: random workloads must leave the
   database structurally sound. *)

module R = Storage.Record
module E = Sqldb.Engine
module I = Sqldb.Integrity

let check_clean name db =
  Alcotest.(check (list string)) name [] (I.check db)

let tests =
  [ Alcotest.test_case "fresh database is clean" `Quick (fun () ->
        check_clean "fresh" (E.create ()));
    Alcotest.test_case "clean after DDL + DML + indexes" `Quick (fun () ->
        let db = E.create () in
        ignore (E.exec db "CREATE TABLE t (a INTEGER, b TEXT)");
        ignore (E.exec db "CREATE INDEX ia ON t (a)");
        ignore (E.exec db "CREATE INDEX iba ON t (b, a)");
        for i = 1 to 500 do
          ignore (E.exec db (Printf.sprintf "INSERT INTO t VALUES (%d, 'v%d')" (i mod 50) i))
        done;
        ignore (E.exec db "DELETE FROM t WHERE a % 3 = 0");
        ignore (E.exec db "UPDATE t SET a = a + 100 WHERE a % 3 = 1");
        check_clean "after churn" db);
    Alcotest.test_case "clean after drops" `Quick (fun () ->
        let db = E.create () in
        ignore (E.exec db "CREATE TABLE t (a INTEGER)");
        ignore (E.exec db "CREATE INDEX ia ON t (a)");
        ignore (E.exec db "INSERT INTO t VALUES (1), (2)");
        ignore (E.exec db "DROP INDEX ia");
        ignore (E.exec db "DROP TABLE t");
        ignore (E.exec db "CREATE TABLE u (x TEXT)");
        ignore (E.exec db "INSERT INTO u VALUES ('recycled pages')");
        check_clean "after drop and recycle" db);
    Alcotest.test_case "clean after TPC-H history" `Quick (fun () ->
        let ctx, _st, _ = Tpch.Workload.build_history ~sf:0.002 ~uw:Tpch.Workload.uw30 ~snapshots:5 () in
        check_clean "tpch data db" ctx.Rql.data;
        check_clean "tpch meta db" ctx.Rql.meta);
    Alcotest.test_case "clean after backup round-trip" `Quick (fun () ->
        let db = E.create () in
        ignore (E.exec db "CREATE TABLE t (a INTEGER)");
        ignore (E.exec db "CREATE INDEX ia ON t (a)");
        ignore (E.exec db "INSERT INTO t VALUES (1), (2), (3)");
        let path = Filename.concat (Filename.get_temp_dir_name ()) "rql_integ.img" in
        Sqldb.Backup.save db ~path;
        let db2 = Sqldb.Backup.load ~path in
        check_clean "restored" db2;
        Sys.remove path);
    Alcotest.test_case "dangling index entry detected" `Quick (fun () ->
        let db = E.create ~snapshots:false () in
        ignore (E.exec db "CREATE TABLE t (a INTEGER)");
        ignore (E.exec db "CREATE INDEX ia ON t (a)");
        ignore (E.exec db "INSERT INTO t VALUES (7)");
        (* corrupt: delete the heap row behind the index's back *)
        let cat = Sqldb.Db.catalog db in
        let tbl = Option.get (Sqldb.Catalog.find_table cat "t") in
        let heap = Storage.Heap.open_existing tbl.Sqldb.Catalog.theap in
        let rid = ref (-1) in
        Storage.Heap.iter (Sqldb.Db.read_current db) heap ~f:(fun r _ -> rid := r);
        Storage.Txn.with_txn Sqldb.Db.(db.pager) (fun txn ->
            ignore (Storage.Heap.delete txn heap !rid));
        Alcotest.(check bool) "detected" true (I.check db <> []));
    Alcotest.test_case "entry/row count mismatch detected" `Quick (fun () ->
        let db = E.create ~snapshots:false () in
        ignore (E.exec db "CREATE TABLE t (a INTEGER)");
        ignore (E.exec db "INSERT INTO t VALUES (7)");
        ignore (E.exec db "CREATE INDEX ia ON t (a)");
        (* corrupt: insert a heap row behind the index's back *)
        let cat = Sqldb.Db.catalog db in
        let tbl = Option.get (Sqldb.Catalog.find_table cat "t") in
        let heap = Storage.Heap.open_existing tbl.Sqldb.Catalog.theap in
        Storage.Txn.with_txn Sqldb.Db.(db.pager) (fun txn ->
            ignore (Storage.Heap.insert txn heap (R.encode_row [| R.Int 9 |])));
        Alcotest.(check bool) "detected" true (I.check db <> []);
        Alcotest.(check bool) "check_exn raises" true
          (try
             I.check_exn db;
             false
           with Sqldb.Db.Error _ -> true)) ]

(* PRAGMA integrity_check: the SQL surface over I.check — a single "ok"
   row when healthy, one row per problem otherwise. *)
let pragma_tests =
  [ Alcotest.test_case "healthy database reports ok" `Quick (fun () ->
        let db = E.create () in
        ignore (E.exec db "CREATE TABLE t (a INTEGER)");
        ignore (E.exec db "CREATE INDEX ia ON t (a)");
        ignore (E.exec db "INSERT INTO t VALUES (1), (2)");
        let res = E.exec db "PRAGMA integrity_check" in
        Alcotest.(check (array string)) "column" [| "integrity_check" |] res.E.columns;
        Alcotest.(check bool) "single ok row" true (res.E.rows = [ [| R.Text "ok" |] ]));
    Alcotest.test_case "one row per problem after page corruption" `Quick (fun () ->
        let db = E.create () in
        ignore (E.exec db "CREATE TABLE t (a INTEGER)");
        ignore (E.exec db "INSERT INTO t VALUES (1), (2)");
        (* flip a bit of a committed page image behind the pager's back *)
        let pager = Sqldb.Db.(db.pager) in
        Storage.Pager.corrupt_page pager (Storage.Pager.n_pages pager - 1) ~bit:4;
        let res = E.exec db "PRAGMA integrity_check" in
        Alcotest.(check bool) "problems reported" true
          (res.E.rows <> [ [| R.Text "ok" |] ] && res.E.rows <> []);
        Alcotest.(check bool) "problem text matches I.check" true
          (List.map (function [| R.Text s |] -> s | _ -> "?") res.E.rows = I.check db));
    Alcotest.test_case "unknown pragma is a typed error" `Quick (fun () ->
        let db = E.create () in
        Alcotest.(check bool) "raises" true
          (try
             ignore (E.exec db "PRAGMA no_such_pragma");
             false
           with E.Error _ -> true)) ]

(* Property: random DML workloads leave the database structurally
   sound. *)
let prop_random_workload =
  QCheck.Test.make ~name:"random workload preserves integrity" ~count:25
    QCheck.(pair (int_bound 10_000) (int_range 10 120))
    (fun (seed, ops) ->
      let rng = Random.State.make [| seed |] in
      let db = E.create () in
      ignore (E.exec db "CREATE TABLE t (k INTEGER, v TEXT)");
      ignore (E.exec db "CREATE INDEX ik ON t (k)");
      for _ = 1 to ops do
        match Random.State.int rng 5 with
        | 0 | 1 ->
          ignore
            (E.exec db
               (Printf.sprintf "INSERT INTO t VALUES (%d, 'v%d')" (Random.State.int rng 30)
                  (Random.State.int rng 1000)))
        | 2 ->
          ignore (E.exec db (Printf.sprintf "DELETE FROM t WHERE k = %d" (Random.State.int rng 30)))
        | 3 ->
          ignore
            (E.exec db
               (Printf.sprintf "UPDATE t SET k = %d WHERE k = %d" (Random.State.int rng 30)
                  (Random.State.int rng 30)))
        | _ -> ignore (E.exec db "COMMIT WITH SNAPSHOT")
      done;
      I.check db = [])

let () =
  Alcotest.run "integrity"
    [ ("integrity", tests);
      ("pragma", pragma_tests);
      ("properties", [ QCheck_alcotest.to_alcotest prop_random_workload ]) ]
