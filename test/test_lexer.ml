(* Tokenizer tests. *)

open Sqldb.Lexer

let token_eq a b = a = b

let token_t = Alcotest.testable (fun ppf t -> Fmt.string ppf (token_to_string t)) token_eq

let toks s = tokenize s

let tests =
  [ Alcotest.test_case "simple select" `Quick (fun () ->
        Alcotest.(check (list token_t)) "tokens"
          [ Ident "SELECT"; Star; Ident "FROM"; Ident "t"; Eof ]
          (toks "SELECT * FROM t"));
    Alcotest.test_case "numbers" `Quick (fun () ->
        Alcotest.(check (list token_t)) "ints and floats"
          [ Int_lit 42; Float_lit 3.5; Float_lit 0.5; Float_lit 1e3; Eof ]
          (toks "42 3.5 .5 1e3"));
    Alcotest.test_case "string literals with escapes" `Quick (fun () ->
        Alcotest.(check (list token_t)) "escape"
          [ Str "it's"; Eof ]
          (toks "'it''s'"));
    Alcotest.test_case "empty string literal" `Quick (fun () ->
        Alcotest.(check (list token_t)) "empty" [ Str ""; Eof ] (toks "''"));
    Alcotest.test_case "operators" `Quick (fun () ->
        Alcotest.(check (list token_t)) "ops"
          [ Eq; Ne; Ne; Lt; Le; Gt; Ge; Concat_op; Plus; Minus; Slash; Percent; Eof ]
          (toks "= <> != < <= > >= || + - / %"));
    Alcotest.test_case "comments are skipped" `Quick (fun () ->
        Alcotest.(check (list token_t)) "line and block"
          [ Ident "a"; Ident "b"; Eof ]
          (toks "a -- comment\n/* block\ncomment */ b"));
    Alcotest.test_case "quoted identifiers" `Quick (fun () ->
        Alcotest.(check (list token_t)) "quoted" [ Ident "weird name"; Eof ]
          (toks "\"weird name\""));
    Alcotest.test_case "punctuation" `Quick (fun () ->
        Alcotest.(check (list token_t)) "punct"
          [ Lparen; Rparen; Comma; Dot; Semi; Eof ]
          (toks "( ) , . ;"));
    Alcotest.test_case "unterminated string raises" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (toks "'oops");
             false
           with Error _ -> true));
    Alcotest.test_case "parameter placeholder" `Quick (fun () ->
        Alcotest.(check (list token_t)) "question"
          [ Ident "a"; Eq; Question; Eof ]
          (toks "a = ?"));
    Alcotest.test_case "unexpected character raises" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (toks "a @ b");
             false
           with Error _ -> true)) ]

let pos_t =
  Alcotest.testable (fun ppf p -> Fmt.string ppf (pos_to_string p)) ( = )

let span_tests =
  [ Alcotest.test_case "tokenize_pos records line and column" `Quick (fun () ->
        Alcotest.(check (list (pair token_t pos_t))) "spans"
          [ (Ident "SELECT", { line = 1; col = 1 });
            (Ident "x", { line = 1; col = 8 });
            (Comma, { line = 1; col = 9 });
            (Ident "y", { line = 2; col = 3 });
            (Ident "FROM", { line = 2; col = 5 });
            (Ident "t", { line = 2; col = 10 });
            (Eof, { line = 2; col = 11 }) ]
          (tokenize_pos "SELECT x,\n  y FROM t"));
    Alcotest.test_case "comments and strings advance positions" `Quick (fun () ->
        Alcotest.(check (list (pair token_t pos_t))) "spans"
          [ (Str "s", { line = 1; col = 1 });
            (Ident "b", { line = 2; col = 12 });
            (Eof, { line = 2; col = 13 }) ]
          (tokenize_pos "'s' -- c\n/* block */b"));
    Alcotest.test_case "lexer errors carry the position" `Quick (fun () ->
        Alcotest.(check bool) "positioned" true
          (try
             ignore (toks "a\n @ b");
             false
           with Error msg ->
             (* the '@' sits at line 2, column 2 *)
             let has needle =
               let nl = String.length needle and hl = String.length msg in
               let rec at i = i + nl <= hl && (String.sub msg i nl = needle || at (i + 1)) in
               at 0
             in
             has "2:2")) ]

let () = Alcotest.run "lexer" [ ("lexer", tests); ("spans", span_tests) ]
