(* LRU cache tests: eviction order, update-moves-to-front, capacity
   changes, and a model-based property. *)

module L = Storage.Lru

let basic =
  [ Alcotest.test_case "add and find" `Quick (fun () ->
        let c = L.create 4 in
        L.add c 1 "a";
        Alcotest.(check (option string)) "hit" (Some "a") (L.find c 1);
        Alcotest.(check (option string)) "miss" None (L.find c 2));
    Alcotest.test_case "evicts least recently used" `Quick (fun () ->
        let c = L.create 2 in
        L.add c 1 "a";
        L.add c 2 "b";
        L.add c 3 "c";
        Alcotest.(check (option string)) "1 evicted" None (L.find c 1);
        Alcotest.(check (option string)) "2 kept" (Some "b") (L.find c 2);
        Alcotest.(check (option string)) "3 kept" (Some "c") (L.find c 3));
    Alcotest.test_case "find refreshes recency" `Quick (fun () ->
        let c = L.create 2 in
        L.add c 1 "a";
        L.add c 2 "b";
        ignore (L.find c 1);
        L.add c 3 "c";
        Alcotest.(check (option string)) "1 kept" (Some "a") (L.find c 1);
        Alcotest.(check (option string)) "2 evicted" None (L.find c 2));
    Alcotest.test_case "add existing key updates value" `Quick (fun () ->
        let c = L.create 2 in
        L.add c 1 "a";
        L.add c 1 "a2";
        Alcotest.(check (option string)) "updated" (Some "a2") (L.find c 1);
        Alcotest.(check int) "no duplicate" 1 (L.length c));
    Alcotest.test_case "clear empties" `Quick (fun () ->
        let c = L.create 4 in
        L.add c 1 "a";
        L.add c 2 "b";
        L.clear c;
        Alcotest.(check int) "empty" 0 (L.length c);
        Alcotest.(check (option string)) "gone" None (L.find c 1));
    Alcotest.test_case "set_capacity shrinks" `Quick (fun () ->
        let c = L.create 8 in
        for i = 1 to 8 do L.add c i (string_of_int i) done;
        L.set_capacity c 3;
        Alcotest.(check int) "len" 3 (L.length c);
        Alcotest.(check (option string)) "most recent kept" (Some "8") (L.find c 8));
    Alcotest.test_case "stats count hits and misses" `Quick (fun () ->
        let c = L.create 2 in
        L.add c 1 "a";
        ignore (L.find c 1);
        ignore (L.find c 2);
        let hits, misses = L.stats c in
        Alcotest.(check (pair int int)) "stats" (1, 1) (hits, misses));
    Alcotest.test_case "stat_record counts evictions and occupancy" `Quick (fun () ->
        let c = L.create 2 in
        L.add c 1 "a";
        L.add c 2 "b";
        L.add c 3 "c";
        L.add c 4 "d";
        ignore (L.find c 4);
        ignore (L.find c 99);
        let s = L.stat_record c in
        Alcotest.(check int) "capacity" 2 s.L.s_capacity;
        Alcotest.(check int) "occupancy" 2 s.L.s_occupancy;
        Alcotest.(check int) "evictions" 2 s.L.s_evictions;
        Alcotest.(check int) "hits" 1 s.L.s_hits;
        Alcotest.(check int) "misses" 1 s.L.s_misses;
        (* shrinking the capacity also evicts *)
        L.set_capacity c 1;
        Alcotest.(check int) "shrink evicts" 3 (L.stat_record c).L.s_evictions;
        L.reset_stats c;
        let s = L.stat_record c in
        Alcotest.(check (list int)) "reset clears counters" [ 0; 0; 0 ]
          [ s.L.s_hits; s.L.s_misses; s.L.s_evictions ]) ]

(* Model check: contents always equal the most recent [capacity] distinct
   touched keys. *)
let prop_model =
  QCheck.Test.make ~name:"lru matches recency model" ~count:300
    QCheck.(pair (int_range 1 8) (list (pair (int_bound 15) small_string)))
    (fun (cap, ops) ->
      let c = L.create cap in
      let recency = ref [] in
      let touch k = recency := k :: List.filter (fun x -> x <> k) !recency in
      List.iter
        (fun (k, v) ->
          L.add c k v;
          touch k)
        ops;
      let expected = List.filteri (fun i _ -> i < cap) !recency in
      List.length expected = L.length c && List.for_all (fun k -> L.mem c k) expected)

let () =
  Alcotest.run "lru"
    [ ("basic", basic); ("properties", [ QCheck_alcotest.to_alcotest prop_model ]) ]
