(* Observability layer tests: histogram quantiles, span nesting and
   ordering, ring-buffer wraparound, counter delta attribution, Chrome
   trace JSON well-formedness, raise-safe timing, and the span hierarchy
   an RQL CollateData run produces. *)

module M = Obs.Metrics
module T = Obs.Trace
module J = Obs.Json

let with_tracing f =
  T.clear ();
  T.set_enabled true;
  Fun.protect ~finally:(fun () -> T.set_enabled false) f

let span_names sps = List.map (fun sp -> sp.T.name) sps

let find_span name sps = List.find (fun sp -> sp.T.name = name) sps

let children_of id sps = List.filter (fun sp -> sp.T.parent = id) sps

let histogram =
  [ Alcotest.test_case "quantiles on a uniform grid" `Quick (fun () ->
        let h = M.histogram "test.h_uniform" in
        M.Histogram.reset h;
        (* 1 ms .. 100 ms in 1 ms steps *)
        for i = 1 to 100 do
          M.Histogram.observe h (float_of_int i /. 1000.)
        done;
        Alcotest.(check int) "count" 100 (M.Histogram.count h);
        Alcotest.(check (float 1e-9)) "min" 0.001 (M.Histogram.min_value h);
        Alcotest.(check (float 1e-9)) "max" 0.1 (M.Histogram.max_value h);
        Alcotest.(check (float 1e-4)) "mean" 0.0505 (M.Histogram.mean h);
        let p50 = M.Histogram.quantile h 0.5 in
        let p95 = M.Histogram.quantile h 0.95 in
        let p99 = M.Histogram.quantile h 0.99 in
        (* log-bucket estimates: ~12% relative error plus bucket width *)
        Alcotest.(check bool) "p50 in range" true (p50 > 0.035 && p50 < 0.075);
        Alcotest.(check bool) "p95 in range" true (p95 > 0.07 && p95 <= 0.1);
        Alcotest.(check bool) "p99 in range" true (p99 > 0.07 && p99 <= 0.1);
        Alcotest.(check bool) "monotonic" true (p50 <= p95 && p95 <= p99);
        Alcotest.(check bool) "clamped to observed range" true
          (M.Histogram.quantile h 0. >= 0.001 && M.Histogram.quantile h 1. <= 0.1));
    Alcotest.test_case "single observation is exact at every quantile" `Quick (fun () ->
        let h = M.histogram "test.h_single" in
        M.Histogram.reset h;
        M.Histogram.observe h 0.5;
        List.iter
          (fun q ->
            Alcotest.(check (float 1e-9))
              (Printf.sprintf "q=%g" q)
              0.5 (M.Histogram.quantile h q))
          [ 0.; 0.5; 0.95; 0.99; 1. ]);
    Alcotest.test_case "underflow and overflow are kept" `Quick (fun () ->
        let h = M.histogram "test.h_edges" in
        M.Histogram.reset h;
        M.Histogram.observe h 1e-9;
        (* below the log range *)
        M.Histogram.observe h 5e4;
        (* above the log range *)
        Alcotest.(check int) "count" 2 (M.Histogram.count h);
        Alcotest.(check (float 1e-12)) "min" 1e-9 (M.Histogram.min_value h);
        Alcotest.(check (float 1e-6)) "max" 5e4 (M.Histogram.max_value h);
        Alcotest.(check bool) "q in range" true
          (M.Histogram.quantile h 0.5 >= 1e-9 && M.Histogram.quantile h 0.5 <= 5e4));
    Alcotest.test_case "empty histogram reports zeros" `Quick (fun () ->
        let h = M.histogram "test.h_empty" in
        M.Histogram.reset h;
        Alcotest.(check int) "count" 0 (M.Histogram.count h);
        Alcotest.(check (float 0.)) "mean" 0. (M.Histogram.mean h);
        Alcotest.(check (float 0.)) "p99" 0. (M.Histogram.quantile h 0.99));
    Alcotest.test_case "value exactly on the first bound is not underflow" `Quick (fun () ->
        (* log10 rounding can place 1e-7 a hair below the first bucket
           bound; it must land in the first real bucket, so cumulative
           bucket counts include it at the 1e-6 bound. *)
        let h = M.histogram "test.h_bound" in
        M.Histogram.reset h;
        M.Histogram.observe h 1e-7;
        (match M.Histogram.cumulative_buckets h with
        | (b1, c1) :: _ ->
          Alcotest.(check (float 1e-18)) "first bound" 1e-6 b1;
          Alcotest.(check int) "counted at first bound" 1 c1
        | [] -> Alcotest.fail "no buckets");
        Alcotest.(check (float 1e-12)) "quantile clamps to the observation" 1e-7
          (M.Histogram.quantile h 0.5));
    Alcotest.test_case "single underflow observation is exact at every quantile" `Quick
      (fun () ->
        let h = M.histogram "test.h_under" in
        M.Histogram.reset h;
        M.Histogram.observe h 1e-9;
        List.iter
          (fun q ->
            Alcotest.(check (float 1e-15))
              (Printf.sprintf "q=%g" q)
              1e-9 (M.Histogram.quantile h q))
          [ 0.; 0.5; 0.99; 1. ]) ]

(* Parse the Prometheus text exposition back line by line and check the
   format contract: every line is a comment or "name[{labels}] value",
   every histogram carries _bucket/_sum/_count, and cumulative bucket
   counts are monotone with le="+Inf" equal to _count. *)
let prometheus =
  [ Alcotest.test_case "exposition format shape" `Quick (fun () ->
        let h = M.histogram "test.prom_h" in
        M.Histogram.reset h;
        List.iter (M.Histogram.observe h) [ 1e-8; 0.002; 0.004; 0.5; 5e4 ];
        let text = M.to_prometheus () in
        let lines = String.split_on_char '\n' text |> List.filter (( <> ) "") in
        Alcotest.(check bool) "non-empty" true (lines <> []);
        let sample_re line =
          (* name{labels} value | name value *)
          match String.index_opt line ' ' with
          | None -> false
          | Some _ -> (
            let parts = String.split_on_char ' ' line in
            match List.rev parts with
            | v :: _ -> Float.is_finite (float_of_string v) || v = "0"
            | [] -> false)
        in
        List.iter
          (fun line ->
            if String.length line > 0 && line.[0] <> '#' then
              Alcotest.(check bool) ("parseable: " ^ line) true (sample_re line))
          lines;
        (* every histogram in the registry exposes the triple *)
        List.iter
          (fun (name, m) ->
            match m with
            | M.M_histogram _ ->
              let mangled =
                "rql_"
                ^ String.map (fun c -> if c = '.' || c = '-' then '_' else c) name
              in
              List.iter
                (fun suffix ->
                  Alcotest.(check bool) (mangled ^ suffix) true
                    (List.exists
                       (fun l ->
                         String.length l > String.length (mangled ^ suffix)
                         && String.sub l 0 (String.length (mangled ^ suffix))
                            = mangled ^ suffix)
                       lines))
                [ "_bucket{le=\""; "_sum "; "_count " ]
            | _ -> ())
          (M.sorted_items ());
        (* the test histogram's buckets are cumulative and end at count *)
        let bucket_counts =
          List.filter_map
            (fun l ->
              let prefix = "rql_test_prom_h_bucket{le=\"" in
              if String.length l > String.length prefix
                 && String.sub l 0 (String.length prefix) = prefix
              then
                match String.rindex_opt l ' ' with
                | Some i ->
                  Some (int_of_string (String.sub l (i + 1) (String.length l - i - 1)))
                | None -> None
              else None)
            lines
        in
        Alcotest.(check int) "10 decade bounds + +Inf" 11 (List.length bucket_counts);
        let rec monotone = function
          | a :: b :: rest -> a <= b && monotone (b :: rest)
          | _ -> true
        in
        Alcotest.(check bool) "cumulative monotone" true (monotone bucket_counts);
        Alcotest.(check int) "+Inf bucket = count" (M.Histogram.count h)
          (List.nth bucket_counts (List.length bucket_counts - 1));
        (* the underflow observation is included from the first bound up *)
        Alcotest.(check bool) "underflow folded into first bound" true
          (List.hd bucket_counts >= 1)) ]

let spans =
  [ Alcotest.test_case "nesting links children to parents" `Quick (fun () ->
        with_tracing (fun () ->
            T.with_span ~name:"a" (fun () ->
                T.with_span ~name:"b" (fun () -> ());
                T.with_span ~name:"c" (fun () -> ()));
            let sps = T.spans () in
            Alcotest.(check (list string)) "start order" [ "a"; "b"; "c" ] (span_names sps);
            let a = find_span "a" sps in
            let b = find_span "b" sps in
            let c = find_span "c" sps in
            Alcotest.(check int) "a is a root" (-1) a.T.parent;
            Alcotest.(check int) "b under a" a.T.id b.T.parent;
            Alcotest.(check int) "c under a" a.T.id c.T.parent;
            Alcotest.(check bool) "a spans its children" true
              (a.T.ts_us <= b.T.ts_us
              && b.T.ts_us +. b.T.dur_us <= a.T.ts_us +. a.T.dur_us +. 1.)));
    Alcotest.test_case "render_tree indents children" `Quick (fun () ->
        with_tracing (fun () ->
            T.with_span ~name:"outer" (fun () -> T.with_span ~name:"inner" (fun () -> ()));
            match T.render_tree (T.spans ()) with
            | [ l1; l2 ] ->
              Alcotest.(check bool) "outer at depth 0" true
                (String.length l1 > 5 && String.sub l1 0 5 = "outer");
              Alcotest.(check bool) "inner indented" true
                (String.length l2 > 7 && String.sub l2 0 7 = "  inner")
            | lines -> Alcotest.failf "expected 2 lines, got %d" (List.length lines)));
    Alcotest.test_case "disabled tracing records nothing" `Quick (fun () ->
        T.clear ();
        T.set_enabled false;
        T.with_span ~name:"ghost" (fun () -> ());
        Alcotest.(check int) "emit returns -1"
          (-1)
          (T.emit ~name:"ghost2" ~ts_us:0. ~dur_us:1. ());
        Alcotest.(check int) "no spans" 0 (List.length (T.spans ())));
    Alcotest.test_case "a raising body still records its span" `Quick (fun () ->
        with_tracing (fun () ->
            (try T.with_span ~name:"boom" (fun () -> failwith "kapow") with Failure _ -> ());
            let sp = find_span "boom" (T.spans ()) in
            Alcotest.(check bool) "error attr attached" true
              (List.mem_assoc "error" sp.T.attrs)));
    Alcotest.test_case "ring buffer wraps around" `Quick (fun () ->
        T.set_capacity 8;
        Fun.protect
          ~finally:(fun () ->
            T.set_capacity 65536;
            T.set_enabled false)
          (fun () ->
            T.set_enabled true;
            for i = 1 to 20 do
              T.with_span ~name:(Printf.sprintf "s%d" i) (fun () -> ())
            done;
            let sps = T.spans () in
            Alcotest.(check int) "only the capacity is kept" 8 (List.length sps);
            Alcotest.(check (list string)) "the 8 most recent survive"
              [ "s13"; "s14"; "s15"; "s16"; "s17"; "s18"; "s19"; "s20" ]
              (span_names sps);
            (* a mark taken now sees only spans completed after it *)
            let m = T.mark () in
            T.with_span ~name:"tail" (fun () -> ());
            Alcotest.(check (list string)) "spans_since mark" [ "tail" ]
              (span_names (T.spans_since m)))) ]

let counters =
  [ Alcotest.test_case "delta attribution via counters diff" `Quick (fun () ->
        let x = M.counter "test.x" in
        let y = M.counter "test.y" in
        let z = M.counter "test.z" in
        M.Counter.set x 0;
        M.Counter.set y 0;
        M.Counter.set z 7;
        let before = M.counters () in
        M.Counter.incr x;
        M.Counter.incr x;
        M.Counter.incr x;
        M.Counter.add y 5;
        let d = M.diff_counters ~before ~after:(M.counters ()) in
        Alcotest.(check (option int)) "x delta" (Some 3) (List.assoc_opt "test.x" d);
        Alcotest.(check (option int)) "y delta" (Some 5) (List.assoc_opt "test.y" d);
        Alcotest.(check (option int)) "untouched counter absent" None
          (List.assoc_opt "test.z" d));
    Alcotest.test_case "creation is idempotent, kind mismatch rejected" `Quick (fun () ->
        let a = M.counter "test.idem" in
        M.Counter.set a 41;
        M.Counter.incr (M.counter "test.idem");
        Alcotest.(check int) "same instance" 42 (M.Counter.get a);
        Alcotest.check_raises "kind mismatch"
          (M.Error "metric test.idem exists with another kind") (fun () ->
            ignore (M.histogram "test.idem")));
    Alcotest.test_case "Exec_stats.time_into accounts a raising body" `Quick (fun () ->
        let acc = ref 0. in
        (try
           Sqldb.Exec_stats.time_into
             (fun dt -> acc := !acc +. dt)
             (fun () ->
               ignore (Unix.gettimeofday ());
               failwith "boom")
         with Failure _ -> ());
        Alcotest.(check bool) "elapsed recorded despite raise" true (!acc >= 0.)) ]

(* Walk the serialized trace back through the parser and check the
   Chrome trace_event contract. *)
let chrome_json =
  [ Alcotest.test_case "trace dump is valid Chrome trace JSON" `Quick (fun () ->
        with_tracing (fun () ->
            T.with_span ~name:"stmt" ~attrs:[ ("kind", T.Str "select") ] (fun () ->
                T.with_span ~name:"child" (fun () -> ()));
            ignore
              (T.emit ~tid:T.tid_modeled ~name:"modeled" ~ts_us:0. ~dur_us:123.4
                 ~attrs:[ ("n", T.Int 3) ] ());
            let s = J.to_string (T.to_chrome_json ()) in
            match J.of_string s with
            | Error msg -> Alcotest.failf "parse failed: %s" msg
            | Ok doc ->
              Alcotest.(check (option string)) "displayTimeUnit" (Some "ms")
                (match J.member "displayTimeUnit" doc with
                | Some (J.Str u) -> Some u
                | _ -> None);
              let events =
                match Option.bind (J.member "traceEvents" doc) J.to_list_opt with
                | Some l -> l
                | None -> Alcotest.fail "traceEvents missing"
              in
              (* 2 thread_name metadata + 3 spans *)
              Alcotest.(check int) "event count" 5 (List.length events);
              List.iter
                (fun ev ->
                  let str k =
                    match J.member k ev with Some (J.Str s) -> Some s | _ -> None
                  in
                  let num k = Option.bind (J.member k ev) J.number_opt in
                  Alcotest.(check bool) "has name" true (str "name" <> None);
                  match str "ph" with
                  | Some "M" -> ()
                  | Some "X" ->
                    Alcotest.(check bool) "X has ts/dur/tid/pid" true
                      (num "ts" <> None && num "dur" <> None && num "tid" <> None
                      && num "pid" <> None)
                  | ph -> Alcotest.failf "unexpected ph %s" (Option.value ph ~default:"?"))
                events;
              (* args round-trip: the modeled span carries its attr *)
              let modeled =
                List.find
                  (fun ev -> J.member "name" ev = Some (J.Str "modeled"))
                  events
              in
              Alcotest.(check (option int)) "attr survives" (Some 3)
                (match Option.bind (J.member "args" modeled) (J.member "n") with
                | Some (J.Int n) -> Some n
                | _ -> None)));
    Alcotest.test_case "serializer never emits nan/inf" `Quick (fun () ->
        let s =
          J.to_string
            (J.Obj
               [ ("a", J.Float Float.nan);
                 ("b", J.Float Float.infinity);
                 ("c", J.Float 0.25) ])
        in
        match J.of_string s with
        | Ok _ -> ()
        | Error msg -> Alcotest.failf "not parseable: %s (%s)" msg s) ]

(* The acceptance hierarchy: an RQL run under tracing yields
   rql.run -> rql.iteration -> {io, spt_build, index_build, query_eval,
   udf} on the modeled track, plus real wall-clock run/iteration
   spans. *)
let rql_hierarchy =
  [ Alcotest.test_case "CollateData produces the expected span tree" `Quick (fun () ->
        let ctx = Rql.create () in
        let e sql = ignore (Sqldb.Engine.exec ctx.Rql.data sql) in
        e "CREATE TABLE t (a INTEGER)";
        e "INSERT INTO t VALUES (1), (2), (3)";
        ignore (Rql.declare_snapshot ctx);
        e "BEGIN";
        e "INSERT INTO t VALUES (4)";
        ignore (Rql.declare_snapshot ctx);
        e "BEGIN";
        e "DELETE FROM t WHERE a = 1";
        ignore (Rql.declare_snapshot ctx);
        with_tracing (fun () ->
            ignore
              (Rql.collate_data ctx ~qs:"SELECT snap_id FROM SnapIds"
                 ~qq:"SELECT a, current_snapshot() AS sid FROM t" ~table:"R");
            let sps = T.spans () in
            let wall = List.filter (fun sp -> sp.T.tid = T.tid_wall) sps in
            let modeled = List.filter (fun sp -> sp.T.tid = T.tid_modeled) sps in
            (* wall-clock track: one run span over three iteration spans *)
            let wrun = find_span "rql.run" wall in
            let witers =
              List.filter (fun sp -> sp.T.name = "rql.iteration") wall
            in
            Alcotest.(check int) "3 wall iterations" 3 (List.length witers);
            List.iter
              (fun sp ->
                Alcotest.(check int) "iteration under run" wrun.T.id sp.T.parent;
                Alcotest.(check bool) "snap_id attr" true
                  (List.mem_assoc "snap_id" sp.T.attrs))
              witers;
            (* modeled track: run -> 3 iterations -> 5 components each *)
            let mrun = find_span "rql.run" modeled in
            let miters = children_of mrun.T.id modeled in
            Alcotest.(check int) "3 modeled iterations" 3 (List.length miters);
            List.iter
              (fun it ->
                Alcotest.(check string) "modeled iteration name" "rql.iteration" it.T.name;
                Alcotest.(check (list string)) "components"
                  [ "io"; "spt_build"; "index_build"; "query_eval"; "udf" ]
                  (span_names (children_of it.T.id modeled));
                (* components tile the iteration exactly *)
                let child_sum =
                  List.fold_left
                    (fun acc c -> acc +. c.T.dur_us)
                    0.
                    (children_of it.T.id modeled)
                in
                Alcotest.(check bool) "components tile iteration" true
                  (Float.abs (child_sum -. it.T.dur_us) < 1e-3))
              miters;
            (* the exported tree parses as Chrome JSON too *)
            match J.of_string (J.to_string (T.to_chrome_json ())) with
            | Ok _ -> ()
            | Error msg -> Alcotest.failf "chrome export: %s" msg)) ]

let timeseries =
  [ Alcotest.test_case "ring samples on the configured interval" `Quick (fun () ->
        let module TS = Obs.Timeseries in
        TS.clear ();
        TS.set_interval 2;
        Fun.protect
          ~finally:(fun () -> TS.set_interval 0)
          (fun () ->
            let c = M.counter "test.ts_counter" in
            M.Counter.set c 5;
            for _ = 1 to 6 do
              TS.tick ()
            done;
            let samples = TS.samples () in
            Alcotest.(check int) "one sample per 2 ticks" 3 (List.length samples);
            (* sequence numbers are monotone and values carry the registry *)
            let seqs = List.map (fun s -> s.TS.seq) samples in
            Alcotest.(check (list int)) "monotone seq" [ 0; 1; 2 ] seqs;
            List.iter
              (fun s ->
                Alcotest.(check (option (float 0.))) "counter value captured" (Some 5.)
                  (List.assoc_opt "test.ts_counter" s.TS.values))
              samples));
    Alcotest.test_case "bounded ring keeps the newest samples" `Quick (fun () ->
        let module TS = Obs.Timeseries in
        TS.set_capacity 4;
        Fun.protect
          ~finally:(fun () -> TS.set_capacity 512)
          (fun () ->
            for _ = 1 to 10 do
              ignore (TS.sample_now ())
            done;
            let samples = TS.samples () in
            Alcotest.(check int) "capacity bound" 4 (List.length samples);
            Alcotest.(check (list int)) "newest survive" [ 6; 7; 8; 9 ]
              (List.map (fun s -> s.TS.seq) samples))) ]

let () =
  Alcotest.run "obs"
    [ ("histogram", histogram);
      ("prometheus", prometheus);
      ("timeseries", timeseries);
      ("spans", spans);
      ("counters", counters);
      ("chrome-json", chrome_json);
      ("rql-hierarchy", rql_hierarchy) ]
