(* Optimizer (lib/sql/absint + lib/sql/opt) tests.

   The central property is *result identity*: for any statement, running
   with PRAGMA optimize=off and optimize=on must produce byte-identical
   results — constant folding replays the real evaluator at plan time,
   so NULL tri-valued logic, division by folded zero, text coercions and
   -0.0 all survive.  A QCheck generator drives random expressions
   through both modes, a fixed matrix covers plan shapes (joins, GROUP
   BY, HAVING, UNION, LIMIT, subqueries), and unit tests pin down each
   W2xx diagnostic, the EXPLAIN annotations, the delta-safety verdicts
   for the four RQL mechanisms' Qq shapes, and the snapshot-invariant
   hoist in the RQL loop. *)

module R = Storage.Record
module E = Sqldb.Engine
module D = Sqldb.Diag
module M = Obs.Metrics

let value = Alcotest.testable R.pp_value R.equal_value
let row = Alcotest.(list value)

let rows_of res = List.map Array.to_list res.E.rows

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  at 0

(* Fixture: typed columns (INTEGER / TEXT / REAL) with NULLs in every
   column, so folded identities meet every runtime type; an index on a
   for bound-tightening; a second table for joins. *)
let fresh () =
  let db = E.create ~snapshots:false () in
  let e sql = ignore (E.exec db sql) in
  e "CREATE TABLE t (a INTEGER, b TEXT, c REAL)";
  e "CREATE INDEX ta ON t (a)";
  e "INSERT INTO t VALUES (1, 'x', 1.5)";
  e "INSERT INTO t VALUES (2, 'y', -0.0)";
  e "INSERT INTO t VALUES (3, '2.5', 0.0)";
  e "INSERT INTO t VALUES (NULL, NULL, NULL)";
  e "INSERT INTO t VALUES (-4, '', 4.25)";
  e "CREATE TABLE u (a INTEGER, d TEXT)";
  e "INSERT INTO u VALUES (1, 'one')";
  e "INSERT INTO u VALUES (3, 'three')";
  e "INSERT INTO u VALUES (NULL, 'none')";
  db

let set_opt db on =
  ignore (E.exec db (if on then "PRAGMA optimize=on" else "PRAGMA optimize=off"))

(* Run [sql] under both optimizer settings; both must agree exactly
   (same rows in the same order, or the same error). *)
let run_both db sql =
  let attempt () =
    try Ok (rows_of (E.exec db sql)) with E.Error m -> Error m
  in
  set_opt db false;
  let off = attempt () in
  set_opt db true;
  let on_ = attempt () in
  (off, on_)

let check_identical db sql =
  let off, on_ = run_both db sql in
  match (off, on_) with
  | Ok o, Ok n -> Alcotest.(check (list row)) sql o n
  | Error o, Error n -> Alcotest.(check string) sql o n
  | Ok _, Error m -> Alcotest.failf "%s: optimized errored (%s), unoptimized ran" sql m
  | Error m, Ok _ -> Alcotest.failf "%s: unoptimized errored (%s), optimized ran" sql m

(* --- random expression generator -------------------------------------- *)

(* Expressions are generated directly as SQL text from a small grammar.
   Literals deliberately include the identity/absorbing elements (0, 1,
   0.0, 1.0, NULL, '') so the strength-reduction and null-propagation
   paths fire often. *)
let gen_expr : string QCheck.Gen.t =
  let open QCheck.Gen in
  let lit =
    oneofl
      [ "0"; "1"; "2"; "-1"; "7"; "0.0"; "1.0"; "2.5"; "-0.0"; "NULL"; "''"; "'x'";
        "'2.5'"; "'abc'" ]
  in
  let col = oneofl [ "a"; "b"; "c" ] in
  let leaf = oneof [ lit; lit; col ] in
  let bin = oneofl [ "+"; "-"; "*"; "/"; "%"; "="; "<>"; "<"; "<="; ">"; ">="; "AND"; "OR"; "||" ] in
  let fn = oneofl [ "abs"; "length"; "lower"; "upper"; "typeof"; "coalesce" ] in
  fix
    (fun self n ->
      if n = 0 then leaf
      else
        let sub = self (n / 2) in
        frequency
          [ (3, map2 (fun op (l, r) -> Printf.sprintf "(%s %s %s)" l op r) bin (pair sub sub));
            (1, map (fun e -> Printf.sprintf "(NOT %s)" e) sub);
            (1, map (fun e -> Printf.sprintf "(- %s)" e) sub);
            (1, map (fun e -> Printf.sprintf "(%s IS NULL)" e) sub);
            (1, map2 (fun e (l, h) -> Printf.sprintf "(%s BETWEEN %s AND %s)" e l h) sub (pair sub sub));
            (1, map2 (fun e (x, y) -> Printf.sprintf "(%s IN (%s, %s))" e x y) sub (pair sub sub));
            (1, map (fun e -> Printf.sprintf "(%s LIKE '%%x%%')" e) sub);
            (1, map2 (fun c (v, e) -> Printf.sprintf "(CASE WHEN %s THEN %s ELSE %s END)" c v e)
                 sub (pair sub sub));
            (1, map2 (fun ty e -> Printf.sprintf "(CAST(%s AS %s))" e ty)
                 (oneofl [ "INTEGER"; "REAL"; "TEXT" ]) sub);
            (1, map2 (fun f e -> Printf.sprintf "%s(%s)" f e) fn sub);
            (2, leaf) ])
    4

let arb_expr = QCheck.make gen_expr ~print:(fun s -> s)

let differential =
  let prop_of mk =
    QCheck.Test.make ~count:300 ~name:"on/off identical" arb_expr (fun e ->
        let db = fresh () in
        let sql = mk e in
        let off, on_ = run_both db sql in
        if off <> on_ then QCheck.Test.fail_reportf "diverged on %s" sql;
        true)
  in
  [ QCheck_alcotest.to_alcotest (prop_of (fun e -> "SELECT " ^ e ^ " FROM t"));
    QCheck_alcotest.to_alcotest
      (prop_of (fun e -> "SELECT a FROM t WHERE " ^ e ^ " ORDER BY a")) ]

(* --- fixed statement matrix -------------------------------------------- *)

let matrix_queries =
  [ "SELECT 1 + 2 * 3";
    "SELECT 1 / 0";
    "SELECT 1.0 / 0";
    "SELECT 1 % 0";
    "SELECT NULL AND 0";
    "SELECT NULL AND 1";
    "SELECT NULL OR 1";
    "SELECT NULL OR 0";
    "SELECT NOT NULL";
    "SELECT 'a' || NULL";
    "SELECT a + 0 FROM t";
    "SELECT c + 0 FROM t";
    "SELECT c - 0, c * 1, c / 1 FROM t";
    "SELECT - - a, - - c FROM t";
    "SELECT NOT NOT (a > 1) FROM t";
    "SELECT b + 0 FROM t";
    "SELECT a FROM t WHERE 1 = 2";
    "SELECT a FROM t WHERE 1 = 1 ORDER BY a";
    "SELECT a FROM t WHERE NULL";
    "SELECT a FROM t WHERE a > 1 AND a > 2 ORDER BY a";
    "SELECT a FROM t WHERE a > 5 AND a < 3";
    "SELECT a FROM t WHERE a >= 2 AND a <= 2";
    "SELECT a FROM t WHERE a = 2 AND a > 0";
    "SELECT COUNT(*) FROM t WHERE 1 = 2";
    "SELECT COUNT(*), SUM(a), MIN(c), MAX(b) FROM t";
    "SELECT b, COUNT(*) FROM t WHERE 1 = 1 GROUP BY b HAVING 1 = 1 ORDER BY b";
    "SELECT b, COUNT(*) FROM t GROUP BY b HAVING COUNT(*) > 1 + 0 ORDER BY b";
    "SELECT t.a, u.d FROM t, u WHERE t.a = u.a AND 1 = 1 ORDER BY t.a";
    "SELECT t.a, u.d FROM t, u WHERE t.a = u.a AND 1 = 2";
    "SELECT t.a, u.d FROM t LEFT JOIN u ON t.a = u.a WHERE 1 = 1 ORDER BY t.a";
    "SELECT a FROM t WHERE a IN (1, 2 + 1) ORDER BY a";
    "SELECT a FROM t WHERE a IN (SELECT a FROM u WHERE 1 = 1) ORDER BY a";
    "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.a = t.a) ORDER BY a";
    "SELECT (SELECT MAX(a) FROM u) + 0 FROM t";
    "SELECT a FROM t UNION SELECT a FROM u ORDER BY a";
    "SELECT a FROM t WHERE 1 = 2 UNION SELECT a FROM u ORDER BY a";
    "SELECT DISTINCT typeof(a) FROM t ORDER BY 1";
    "SELECT a FROM t ORDER BY a LIMIT 2 + 1 OFFSET 1 * 1";
    "SELECT CASE WHEN 1 = 2 THEN 'dead' WHEN a > 1 THEN 'big' ELSE 'small' END FROM t";
    "SELECT CASE WHEN 1 = 1 THEN b ELSE upper(b) END FROM t" ]

let matrix =
  [ Alcotest.test_case "fixed matrix on/off identical" `Quick (fun () ->
        let db = fresh () in
        List.iter (check_identical db) matrix_queries) ]

(* --- diagnostics ------------------------------------------------------- *)

let codes db sql =
  List.filter (fun c -> c.[0] = 'W' && c.[1] = '2') (List.map (fun d -> d.D.code) (E.analyze db sql))

let case name sql expected =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check (list string)) sql expected (codes (fresh ()) sql))

let diagnostics =
  [ case "W201 always-false WHERE" "SELECT a FROM t WHERE 1 = 2" [ "W201" ];
    case "W201 constant NULL WHERE" "SELECT a FROM t WHERE NULL" [ "W201" ];
    case "W202 always-true WHERE" "SELECT a FROM t WHERE 1 = 1" [ "W202" ];
    case "W202 always-true HAVING" "SELECT b, COUNT(*) FROM t GROUP BY b HAVING 1 = 1"
      [ "W202" ];
    case "W203 contradictory bounds" "SELECT b FROM t WHERE b > 'x' AND b < 'a'" [ "W203" ];
    (* the weaker conjunct is both an implied filter (W202) and a
       redundant index bound (W204) *)
    case "W204 redundant index bound" "SELECT a FROM t WHERE a > 1 AND a > 2"
      [ "W202"; "W204" ];
    case "clean statement stays clean" "SELECT a FROM t WHERE a > 1" [];
    Alcotest.test_case "optimize=off silences W2xx" `Quick (fun () ->
        let db = fresh () in
        set_opt db false;
        Alcotest.(check (list string)) "no W2xx" [] (codes db "SELECT a FROM t WHERE 1 = 2")) ]

(* --- EXPLAIN annotations ----------------------------------------------- *)

let explain_lines db sql =
  List.filter_map
    (function [ R.Text l ] -> Some l | _ -> None)
    (rows_of (E.exec db ("EXPLAIN " ^ sql)))

let has_line db sql needle =
  List.exists (fun l -> contains l needle) (explain_lines db sql)

let explain =
  [ Alcotest.test_case "folded counts surface in OPT trailer" `Quick (fun () ->
        let db = fresh () in
        Alcotest.(check bool) "folded" true (has_line db "SELECT 1 + 2 * 3" "OPT (folded="));
    Alcotest.test_case "always-false WHERE renders an empty scan" `Quick (fun () ->
        let db = fresh () in
        Alcotest.(check bool) "empty scan" true
          (has_line db "SELECT a FROM t WHERE 1 = 2" "EMPTY SCAN"));
    Alcotest.test_case "pruned predicate annotates the scan line" `Quick (fun () ->
        let db = fresh () in
        Alcotest.(check bool) "pruned" true
          (has_line db "SELECT a FROM t WHERE a > 0 AND 1 = 1" "pruned"));
    Alcotest.test_case "delta-safe aggregate says yes" `Quick (fun () ->
        let db = fresh () in
        Alcotest.(check bool) "yes" true
          (has_line db "SELECT b, COUNT(*) FROM t GROUP BY b" "DELTA-SAFE: yes"));
    Alcotest.test_case "LIMIT defeats delta-safety with a reason" `Quick (fun () ->
        let db = fresh () in
        Alcotest.(check bool) "no (LIMIT)" true
          (has_line db "SELECT COUNT(*) FROM t LIMIT 1" "DELTA-SAFE: no (LIMIT/OFFSET)"));
    Alcotest.test_case "optimize=off renders the raw plan" `Quick (fun () ->
        let db = fresh () in
        set_opt db false;
        Alcotest.(check bool) "no trailer" false
          (has_line db "SELECT 1 + 2 * 3" "DELTA-SAFE"));
    Alcotest.test_case "EXPLAIN ANALYZE carries the annotations too" `Quick (fun () ->
        let db = fresh () in
        let res = E.exec db "EXPLAIN ANALYZE SELECT b, COUNT(*) FROM t GROUP BY b" in
        let lines = List.filter_map (function [ R.Text l ] -> Some l | _ -> None) (rows_of res) in
        Alcotest.(check bool) "delta line" true
          (List.exists (fun l -> contains l "DELTA-SAFE: yes") lines)) ]

(* --- delta-safety verdicts for the four RQL mechanisms' Qq shapes ------ *)

let delta_line db sql =
  match List.rev (explain_lines db sql) with
  | last :: _ -> last
  | [] -> Alcotest.fail "empty EXPLAIN"

let delta_check name sql expect =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check bool) sql true (contains (delta_line (fresh ()) sql) expect))

let delta_safety =
  [ (* CollateData / CollateDataIntoIntervals Qq: plain row collection *)
    delta_check "CollateData shape is not delta-safe" "SELECT a, b FROM t"
      "DELTA-SAFE: no (no aggregate to update incrementally)";
    (* AggregateDataInVariable Qq: single monoid aggregate *)
    delta_check "AggregateDataInVariable shape is delta-safe" "SELECT COUNT(*) FROM t"
      "DELTA-SAFE: yes";
    (* AggregateDataInTable Qq: grouped monoid aggregates *)
    delta_check "AggregateDataInTable shape is delta-safe"
      "SELECT b, SUM(a), AVG(c) FROM t GROUP BY b" "DELTA-SAFE: yes";
    delta_check "DISTINCT aggregate is rejected" "SELECT COUNT(DISTINCT a) FROM t"
      "DELTA-SAFE: no (DISTINCT aggregate";
    delta_check "DISTINCT is rejected" "SELECT DISTINCT a FROM t" "DELTA-SAFE: no (";
    delta_check "UNION is rejected" "SELECT a FROM t UNION SELECT a FROM u"
      "DELTA-SAFE: no (compound (UNION))";
    delta_check "subquery is rejected" "SELECT SUM(a) FROM t WHERE a IN (SELECT a FROM u)"
      "DELTA-SAFE: no (subquery)";
    Alcotest.test_case "UDF call is rejected" `Quick (fun () ->
        let db = fresh () in
        E.register_fn db "myfn" (fun _ -> R.Int 1);
        Alcotest.(check bool) "reason names the UDF" true
          (contains (delta_line db "SELECT SUM(myfn(a)) FROM t") "DELTA-SAFE: no ("));
    Alcotest.test_case "sys_plans counts delta-safe cached plans" `Quick (fun () ->
        let db = fresh () in
        ignore (E.exec db "SELECT COUNT(*) FROM t");
        ignore (E.exec db "SELECT a FROM t");
        let r = E.exec db "SELECT delta_safe FROM sys_plans" in
        Alcotest.(check (list row)) "one delta-safe plan" [ [ R.Int 1 ] ] (rows_of r)) ]

(* --- snapshot-invariance and the RQL hoist ----------------------------- *)

let c_reuses = M.counter "rql.qq_invariant_reuses"
let c_folds = M.counter "sql.opt_folds"
let c_hoists = M.counter "sql.opt_invariant_hoists"

let invariance =
  [ Alcotest.test_case "constant Qq replays across the snapshot loop" `Quick (fun () ->
        let ctx = Rql.create () in
        let e sql = ignore (E.exec ctx.Rql.data sql) in
        e "CREATE TABLE h (x INTEGER)";
        ignore (Rql.declare_snapshot ctx);
        e "BEGIN";
        e "INSERT INTO h VALUES (1)";
        ignore (Rql.declare_snapshot ctx);
        e "BEGIN";
        e "INSERT INTO h VALUES (2)";
        ignore (Rql.declare_snapshot ctx);
        let before = M.Counter.get c_reuses in
        let run =
          Rql.collate_data ctx ~qs:"SELECT snap_id FROM SnapIds" ~qq:"SELECT 1 + 1 AS two"
            ~table:"Result"
        in
        Alcotest.(check int) "iterations" 3 (List.length run.Rql.Iter_stats.iterations);
        (* first iteration evaluates, the other two replay the hoist *)
        Alcotest.(check int) "reuses" (before + 2) (M.Counter.get c_reuses);
        Alcotest.(check (list row)) "rows" [ [ R.Int 2 ]; [ R.Int 2 ]; [ R.Int 2 ] ]
          (List.map Array.to_list (E.query ctx.Rql.meta "SELECT two FROM Result")));
    Alcotest.test_case "snapshot-dependent Qq is not hoisted" `Quick (fun () ->
        let ctx = Rql.create () in
        let e sql = ignore (E.exec ctx.Rql.data sql) in
        e "CREATE TABLE h (x INTEGER)";
        e "INSERT INTO h VALUES (7)";
        ignore (Rql.declare_snapshot ctx);
        e "BEGIN";
        e "INSERT INTO h VALUES (8)";
        ignore (Rql.declare_snapshot ctx);
        let before = M.Counter.get c_reuses in
        ignore
          (Rql.collate_data ctx ~qs:"SELECT snap_id FROM SnapIds"
             ~qq:"SELECT COUNT(*) AS n FROM h" ~table:"Result");
        Alcotest.(check int) "no reuse" before (M.Counter.get c_reuses);
        Alcotest.(check (list row)) "per-snapshot counts" [ [ R.Int 1 ]; [ R.Int 2 ] ]
          (List.map Array.to_list (E.query ctx.Rql.meta "SELECT n FROM Result ORDER BY n")));
    Alcotest.test_case "folds and hoists count into the registry" `Quick (fun () ->
        let db = fresh () in
        let f0 = M.Counter.get c_folds in
        ignore (E.exec db "SELECT 1 + 2 FROM t");
        Alcotest.(check bool) "folds advanced" true (M.Counter.get c_folds > f0);
        let ctx = Rql.create () in
        ignore (E.exec ctx.Rql.data "CREATE TABLE h (x INTEGER)");
        ignore (Rql.declare_snapshot ctx);
        let h0 = M.Counter.get c_hoists in
        ignore
          (Rql.collate_data ctx ~qs:"SELECT snap_id FROM SnapIds"
             ~qq:"SELECT 2 * 2 AS four" ~table:"Result");
        Alcotest.(check bool) "hoists advanced" true (M.Counter.get c_hoists > h0)) ]

(* --- fold-aware fingerprints ------------------------------------------- *)

module F = Sqldb.Fingerprint

let same_fp a b = Alcotest.(check string) (a ^ " ~ " ^ b) (F.normalize a) (F.normalize b)

let diff_fp a b =
  Alcotest.(check bool)
    (a ^ " !~ " ^ b)
    false
    (String.equal (F.normalize a) (F.normalize b))

let fingerprints =
  [ Alcotest.test_case "folded arithmetic shares a fingerprint" `Quick (fun () ->
        same_fp "SELECT a FROM t WHERE a > 1 + 1" "SELECT a FROM t WHERE a > 2";
        same_fp "SELECT a FROM t WHERE a > (7)" "SELECT a FROM t WHERE a > 7";
        same_fp "SELECT 1 * 2 + a FROM t" "SELECT 2 + a FROM t";
        same_fp "SELECT a FROM t LIMIT 2 + 1" "SELECT a FROM t LIMIT 3";
        same_fp "SELECT a FROM t WHERE a = -1" "SELECT a FROM t WHERE a = 1");
    Alcotest.test_case "constant builtin calls fold like literals" `Quick (fun () ->
        same_fp "SELECT abs(-2) FROM t" "SELECT 2 FROM t";
        same_fp "SELECT coalesce(1, 2) FROM t" "SELECT 1 FROM t");
    Alcotest.test_case "operator precedence keeps distinct shapes apart" `Quick (fun () ->
        diff_fp "SELECT 1 + 2 * a FROM t" "SELECT 3 * a FROM t";
        diff_fp "SELECT a + 1 + 1 FROM t" "SELECT a + 2 FROM t";
        diff_fp "SELECT a - 1 FROM t" "SELECT a FROM t") ]

(* --- the escape hatch --------------------------------------------------- *)

let pragma =
  [ Alcotest.test_case "PRAGMA optimize reports and toggles" `Quick (fun () ->
        let db = fresh () in
        let state () =
          match rows_of (E.exec db "PRAGMA optimize") with
          | [ [ R.Text s ] ] -> s
          | _ -> Alcotest.fail "unexpected pragma shape"
        in
        Alcotest.(check string) "default on" "on" (state ());
        set_opt db false;
        Alcotest.(check string) "off" "off" (state ());
        set_opt db true;
        Alcotest.(check string) "back on" "on" (state ()));
    Alcotest.test_case "toggling resets the plan cache" `Quick (fun () ->
        let db = fresh () in
        let size () =
          match rows_of (E.exec db "SELECT size FROM sys_plans") with
          | [ [ R.Int n ] ] -> n
          | _ -> Alcotest.fail "unexpected sys_plans shape"
        in
        ignore (E.exec db "SELECT a FROM t");
        Alcotest.(check bool) "warm" true (size () >= 2);
        set_opt db false;
        (* only the size probe itself has been re-planned since the reset *)
        Alcotest.(check bool) "emptied" true (size () <= 1)) ]

let () =
  Alcotest.run "opt"
    [ ("differential", differential);
      ("matrix", matrix);
      ("diagnostics", diagnostics);
      ("explain", explain);
      ("delta-safety", delta_safety);
      ("invariance", invariance);
      ("fingerprints", fingerprints);
      ("pragma", pragma) ]
