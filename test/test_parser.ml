(* Parser tests: statement shapes, precedence, the AS OF extension, and
   error reporting. *)

open Sqldb.Ast
module Parser = Sqldb.Parser
module R = Storage.Record

let parse = Parser.parse_one

let sel s = match parse s with Select sel -> sel | _ -> Alcotest.fail "expected SELECT"

let tests =
  [ Alcotest.test_case "select star" `Quick (fun () ->
        let s = sel "SELECT * FROM t" in
        Alcotest.(check bool) "star" true (s.items = [ Star ]);
        (match s.from with
        | Some (tr, []) -> Alcotest.(check string) "table" "t" tr.tbl_name
        | _ -> Alcotest.fail "from"));
    Alcotest.test_case "as of clause" `Quick (fun () ->
        let s = sel "SELECT AS OF 3 * FROM t" in
        Alcotest.(check bool) "as_of" true (s.as_of = Some (Lit (R.Int 3))));
    Alcotest.test_case "as of with distinct (paper form)" `Quick (fun () ->
        let s = sel "SELECT AS OF 5 DISTINCT 5 FROM LoggedIn WHERE l_userid = 'UserB'" in
        Alcotest.(check bool) "as_of" true (s.as_of = Some (Lit (R.Int 5)));
        Alcotest.(check bool) "distinct" true s.distinct);
    Alcotest.test_case "arithmetic precedence" `Quick (fun () ->
        let s = sel "SELECT 1 + 2 * 3" in
        match s.items with
        | [ Sel_expr (Binop (Add, Lit (R.Int 1), Binop (Mul, Lit (R.Int 2), Lit (R.Int 3))), None) ]
          -> ()
        | _ -> Alcotest.fail "precedence");
    Alcotest.test_case "and/or precedence" `Quick (fun () ->
        let s = sel "SELECT 1 FROM t WHERE a OR b AND c" in
        match s.where with
        | Some (Binop (Or, Col (None, "a"), Binop (And, Col (None, "b"), Col (None, "c")))) -> ()
        | _ -> Alcotest.fail "precedence");
    Alcotest.test_case "comparison chain with NOT" `Quick (fun () ->
        let s = sel "SELECT 1 FROM t WHERE NOT a = 1" in
        match s.where with
        | Some (Unop (Not, Binop (Eq, Col (None, "a"), Lit (R.Int 1)))) -> ()
        | _ -> Alcotest.fail "not");
    Alcotest.test_case "between / in / like / is null" `Quick (fun () ->
        let s =
          sel
            "SELECT 1 FROM t WHERE a BETWEEN 1 AND 2 AND b IN (1,2) AND c LIKE 'x%' AND d IS \
             NOT NULL"
        in
        Alcotest.(check int) "conjuncts" 4 (List.length (Sqldb.Expr.conjuncts (Option.get s.where))));
    Alcotest.test_case "group by / having / order / limit / offset" `Quick (fun () ->
        let s =
          sel
            "SELECT a, COUNT(*) AS c FROM t GROUP BY a HAVING c > 1 ORDER BY c DESC, a ASC \
             LIMIT 10 OFFSET 5"
        in
        Alcotest.(check int) "group" 1 (List.length s.group_by);
        Alcotest.(check bool) "having" true (s.having <> None);
        Alcotest.(check (list bool)) "order desc flags" [ true; false ]
          (List.map (fun o -> o.ord_desc) s.order_by);
        Alcotest.(check bool) "limit" true (s.limit = Some (Lit (R.Int 10)));
        Alcotest.(check bool) "offset" true (s.offset = Some (Lit (R.Int 5))));
    Alcotest.test_case "joins: comma and JOIN..ON" `Quick (fun () ->
        let s = sel "SELECT 1 FROM a, b JOIN c ON a.x = c.x" in
        match s.from with
        | Some (first, [ j1; j2 ]) ->
          Alcotest.(check string) "first" "a" first.tbl_name;
          Alcotest.(check string) "comma join" "b" j1.join_table.tbl_name;
          Alcotest.(check bool) "no on" true (j1.join_on = None);
          Alcotest.(check string) "join" "c" j2.join_table.tbl_name;
          Alcotest.(check bool) "has on" true (j2.join_on <> None)
        | _ -> Alcotest.fail "from");
    Alcotest.test_case "table aliases with and without AS" `Quick (fun () ->
        let s = sel "SELECT 1 FROM orders o, lineitem AS l" in
        match s.from with
        | Some (first, [ j ]) ->
          Alcotest.(check (option string)) "o" (Some "o") first.tbl_alias;
          Alcotest.(check (option string)) "l" (Some "l") j.join_table.tbl_alias
        | _ -> Alcotest.fail "from");
    Alcotest.test_case "aggregates and count(*)" `Quick (fun () ->
        let s = sel "SELECT COUNT(*), SUM(x), AVG(y), COUNT(DISTINCT z) FROM t" in
        match s.items with
        | [ Sel_expr (Agg a1, None); Sel_expr (Agg a2, None); Sel_expr (Agg a3, None);
            Sel_expr (Agg a4, None) ] ->
          Alcotest.(check string) "count" "count" a1.agg_fn;
          Alcotest.(check bool) "star" true (a1.agg_arg = None);
          Alcotest.(check string) "sum" "sum" a2.agg_fn;
          Alcotest.(check string) "avg" "avg" a3.agg_fn;
          Alcotest.(check bool) "distinct" true a4.agg_distinct
        | _ -> Alcotest.fail "aggregates");
    Alcotest.test_case "min/max with two args are scalar calls" `Quick (fun () ->
        let s = sel "SELECT MAX(a, b) FROM t" in
        match s.items with
        | [ Sel_expr (Call ("max", [ _; _ ]), None) ] -> ()
        | _ -> Alcotest.fail "scalar max");
    Alcotest.test_case "case expression" `Quick (fun () ->
        let s = sel "SELECT CASE WHEN a = 1 THEN 'one' ELSE 'other' END FROM t" in
        match s.items with
        | [ Sel_expr (Case { branches = [ _ ]; else_ = Some _ }, None) ] -> ()
        | _ -> Alcotest.fail "case");
    Alcotest.test_case "insert values multi-row" `Quick (fun () ->
        match parse "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')" with
        | Insert { table = "t"; columns = Some [ "a"; "b" ]; values = [ _; _ ]; from_select = None }
          -> ()
        | _ -> Alcotest.fail "insert");
    Alcotest.test_case "insert from select" `Quick (fun () ->
        match parse "INSERT INTO t SELECT * FROM s" with
        | Insert { from_select = Some _; values = []; _ } -> ()
        | _ -> Alcotest.fail "insert select");
    Alcotest.test_case "update and delete" `Quick (fun () ->
        (match parse "UPDATE t SET a = 1, b = b + 1 WHERE c = 2" with
        | Update { sets = [ ("a", _); ("b", _) ]; where = Some _; _ } -> ()
        | _ -> Alcotest.fail "update");
        match parse "DELETE FROM t" with
        | Delete { where = None; _ } -> ()
        | _ -> Alcotest.fail "delete");
    Alcotest.test_case "create table with types" `Quick (fun () ->
        match parse "CREATE TABLE t (a INTEGER, b VARCHAR(10), c DOUBLE PRECISION)" with
        | Create_table { cols = [ a; b; c ]; _ } ->
          Alcotest.(check string) "a" "INTEGER" a.col_type;
          Alcotest.(check string) "b" "VARCHAR" b.col_type;
          Alcotest.(check string) "c" "DOUBLE PRECISION" c.col_type
        | _ -> Alcotest.fail "create");
    Alcotest.test_case "create table as select" `Quick (fun () ->
        match parse "CREATE TABLE t AS SELECT a FROM s" with
        | Create_table { as_select = Some _; cols = []; _ } -> ()
        | _ -> Alcotest.fail "ctas");
    Alcotest.test_case "create index / drop" `Quick (fun () ->
        (match parse "CREATE INDEX i ON t (a, b)" with
        | Create_index { index = "i"; table = "t"; columns = [ "a"; "b" ]; _ } -> ()
        | _ -> Alcotest.fail "index");
        (match parse "DROP TABLE IF EXISTS t" with
        | Drop_table { if_exists = true; _ } -> ()
        | _ -> Alcotest.fail "drop table");
        match parse "DROP INDEX i" with
        | Drop_index { if_exists = false; _ } -> ()
        | _ -> Alcotest.fail "drop index");
    Alcotest.test_case "transactions" `Quick (fun () ->
        Alcotest.(check bool) "begin" true (parse "BEGIN" = Begin_txn);
        Alcotest.(check bool) "commit" true (parse "COMMIT" = Commit { with_snapshot = false });
        Alcotest.(check bool) "commit with snapshot" true
          (parse "COMMIT WITH SNAPSHOT;" = Commit { with_snapshot = true });
        Alcotest.(check bool) "rollback" true (parse "ROLLBACK" = Rollback));
    Alcotest.test_case "parse_many splits statements" `Quick (fun () ->
        Alcotest.(check int) "three" 3
          (List.length (Parser.parse_many "BEGIN; DELETE FROM t; COMMIT WITH SNAPSHOT;")));
    Alcotest.test_case "trailing garbage rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (parse "SELECT 1 garbage extra");
             false
           with Parser.Error _ -> true));
    Alcotest.test_case "udf call with string args" `Quick (fun () ->
        let s = sel "SELECT CollateData(snap_id, 'SELECT 1', 'T') FROM SnapIds" in
        match s.items with
        | [ Sel_expr (Call ("collatedata", [ Col (None, "snap_id"); Lit (R.Text _); Lit (R.Text "T") ]), None) ]
          -> ()
        | _ -> Alcotest.fail "udf call") ]

(* Parse errors name the offending token's line:column. *)
let golden name sql expected =
  Alcotest.test_case name `Quick (fun () ->
      match parse sql with
      | _ -> Alcotest.fail "expected a parse error"
      | exception Parser.Error msg -> Alcotest.(check string) sql expected msg)

let error_tests =
  [ golden "missing FROM" "DELETE t" "parse error at 1:8: expected FROM but found t";
    golden "missing identifier" "SELECT a FROM"
      "parse error at 1:14: expected identifier but found <eof>";
    golden "trailing input" "DELETE FROM t 5"
      "parse error at 1:15: trailing input after statement: 5";
    golden "error position tracks newlines" "SELECT a\nFROM t\nWHERE"
      "parse error at 3:6: unexpected token <eof> in expression" ]

let () = Alcotest.run "parser" [ ("parser", tests); ("errors", error_tests) ]
