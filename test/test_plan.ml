(* Prepared statements, the physical-plan cache and its invalidation,
   and plan reuse across the RQL snapshot loop (the plan-once /
   bind-many acceptance criteria). *)

module E = Sqldb.Engine
module R = Storage.Record
module M = Obs.Metrics

let c_hits = M.counter "sql.plan_cache_hits"
let c_inval = M.counter "sql.plan_cache_invalidations"
let c_built = M.counter "sql.plans_built"
let h_parse = M.histogram "sql.parse_latency"

let get = M.Counter.get
let parses () = M.Histogram.count h_parse

let exec db sql = ignore (E.exec db sql)

let texts rows = List.map (function [| R.Text s |] -> s | _ -> "?") rows

let fresh_emp () =
  let db = E.create ~snapshots:false () in
  exec db "CREATE TABLE emp (id INTEGER, name TEXT)";
  List.iteri
    (fun i n -> exec db (Printf.sprintf "INSERT INTO emp VALUES (%d, '%s')" (i + 1) n))
    [ "ann"; "bob"; "cat"; "dan"; "eve" ];
  db

let prepared_tests =
  [ Alcotest.test_case "prepare, bind and execute" `Quick (fun () ->
        let db = fresh_emp () in
        let p = E.prepare db "SELECT name FROM emp WHERE id = ?" in
        Alcotest.(check (list string)) "first" [ "bob" ]
          (texts (E.exec_prepared ~params:[| R.Int 2 |] p).E.rows);
        Alcotest.(check (list string)) "rebound" [ "dan" ]
          (texts (E.exec_prepared ~params:[| R.Int 4 |] p).E.rows));
    Alcotest.test_case "parameter in LIMIT" `Quick (fun () ->
        let db = fresh_emp () in
        let p = E.prepare db "SELECT name FROM emp ORDER BY id LIMIT ?" in
        Alcotest.(check (list string)) "two" [ "ann"; "bob" ]
          (texts (E.exec_prepared ~params:[| R.Int 2 |] p).E.rows);
        Alcotest.(check (list string)) "four" [ "ann"; "bob"; "cat"; "dan" ]
          (texts (E.exec_prepared ~params:[| R.Int 4 |] p).E.rows));
    Alcotest.test_case "missing binding raises" `Quick (fun () ->
        let db = fresh_emp () in
        let p = E.prepare db "SELECT name FROM emp WHERE id = ?" in
        Alcotest.(check bool) "raises" true
          (try
             ignore (E.exec_prepared p);
             false
           with E.Error _ -> true));
    Alcotest.test_case "only SELECT can be prepared" `Quick (fun () ->
        let db = fresh_emp () in
        Alcotest.(check bool) "raises" true
          (try
             ignore (E.prepare db "DELETE FROM emp");
             false
           with E.Error _ -> true));
    Alcotest.test_case "AS OF parameter runs one plan against many snapshots" `Quick
      (fun () ->
        let db = E.create () in
        exec db "CREATE TABLE t (x INTEGER)";
        let sids =
          List.map
            (fun i ->
              exec db (Printf.sprintf "INSERT INTO t VALUES (%d)" i);
              Option.get (E.exec db "COMMIT WITH SNAPSHOT").E.snapshot)
            [ 1; 2; 3 ]
        in
        let p = E.prepare db "SELECT AS OF ? COUNT(*) FROM t" in
        let h0 = get c_hits and b0 = get c_built in
        List.iteri
          (fun i sid ->
            Alcotest.(check bool)
              (Printf.sprintf "count at snapshot %d" sid)
              true
              ((E.exec_prepared ~params:[| R.Int sid |] p).E.rows = [ [| R.Int (i + 1) |] ]))
          sids;
        Alcotest.(check int) "planned once" 1 (get c_built - b0);
        Alcotest.(check int) "two cache hits" 2 (get c_hits - h0)) ]

let cache_tests =
  [ Alcotest.test_case "repeated exec of the same text hits the cache" `Quick (fun () ->
        let db = fresh_emp () in
        let h0 = get c_hits and b0 = get c_built in
        exec db "SELECT name FROM emp WHERE id = 1";
        exec db "SELECT name FROM emp WHERE id = 1";
        exec db "SELECT name FROM emp WHERE id = 1";
        Alcotest.(check int) "one build" 1 (get c_built - b0);
        Alcotest.(check int) "two hits" 2 (get c_hits - h0));
    Alcotest.test_case "CREATE INDEX invalidates and upgrades the plan" `Quick (fun () ->
        let db = fresh_emp () in
        let p = E.prepare db "SELECT name FROM emp WHERE id = ?" in
        Alcotest.(check (list string)) "before" [ "cat" ]
          (texts (E.exec_prepared ~params:[| R.Int 3 |] p).E.rows);
        exec db "CREATE INDEX ie ON emp (id)";
        let i0 = get c_inval in
        Alcotest.(check (list string)) "after" [ "cat" ]
          (texts (E.exec_prepared ~params:[| R.Int 3 |] p).E.rows);
        Alcotest.(check int) "replanned" 1 (get c_inval - i0);
        (* the re-planned access path uses the new index *)
        Alcotest.(check bool) "explain names index" true
          (List.mem "SEARCH emp USING INDEX ie"
             (texts (E.exec db "EXPLAIN SELECT name FROM emp WHERE id = 3").E.rows)));
    Alcotest.test_case "DROP TABLE invalidates a prepared statement" `Quick (fun () ->
        let db = E.create ~snapshots:false () in
        exec db "CREATE TABLE s (a INTEGER, b INTEGER)";
        exec db "INSERT INTO s VALUES (1, 2)";
        let p = E.prepare db "SELECT * FROM s" in
        Alcotest.(check int) "two columns" 2
          (Array.length (E.exec_prepared p).E.columns);
        exec db "DROP TABLE s";
        Alcotest.(check bool) "gone" true
          (try
             ignore (E.exec_prepared p);
             false
           with E.Error _ -> true);
        (* re-created with a different shape: the statement re-plans *)
        exec db "CREATE TABLE s (a INTEGER)";
        exec db "INSERT INTO s VALUES (7)";
        Alcotest.(check bool) "new shape" true ((E.exec_prepared p).E.rows = [ [| R.Int 7 |] ]));
    Alcotest.test_case "sys_plans exposes per-handle cache state" `Quick (fun () ->
        let db = E.create ~snapshots:false () in
        exec db "SELECT 1";
        exec db "SELECT 1";
        (match (E.exec db "SELECT size, hits, misses, invalidations FROM sys_plans").E.rows with
        | [ [| R.Int size; R.Int hits; R.Int misses; R.Int inval |] ] ->
          Alcotest.(check bool) "size" true (size >= 2);
          Alcotest.(check int) "hits" 1 hits;
          Alcotest.(check bool) "misses counted" true (misses >= 2);
          Alcotest.(check int) "no invalidations" 0 inval
        | _ -> Alcotest.fail "unexpected sys_plans shape");
        exec db "CREATE TABLE g (x INTEGER)";
        match (E.exec db "SELECT generation FROM sys_plans").E.rows with
        | [ [| R.Int gen |] ] -> Alcotest.(check bool) "generation advanced" true (gen >= 1)
        | _ -> Alcotest.fail "unexpected sys_plans shape") ]

let qs_all = "SELECT snap_id FROM SnapIds"

let rql_tests =
  [ Alcotest.test_case "RQL plans Qq exactly once over N snapshots" `Quick (fun () ->
        let ctx = Rql.create () in
        ignore (Rql.exec_data ctx "CREATE TABLE t (x INTEGER)");
        for i = 1 to 5 do
          ignore (Rql.exec_data ctx (Printf.sprintf "INSERT INTO t VALUES (%d)" i));
          ignore (Rql.declare_snapshot ctx)
        done;
        let p0 = parses () and h0 = get c_hits and b0 = get c_built in
        let run =
          Rql.collate_data ctx ~qs:qs_all ~qq:"SELECT x FROM t WHERE x >= 0" ~table:"Res"
        in
        Alcotest.(check int) "five iterations" 5 (List.length run.Rql.Iter_stats.iterations);
        Alcotest.(check int) "all rows collated" 15 run.Rql.Iter_stats.result_rows;
        (* two distinct statements were parsed: Qs and Qq *)
        Alcotest.(check int) "parsed twice" 2 (parses () - p0);
        (* two plans built (Qs, Qq); the other N-1 iterations hit the cache *)
        Alcotest.(check int) "planned twice" 2 (get c_built - b0);
        Alcotest.(check bool) "N-1 cache hits" true (get c_hits - h0 >= 4));
    Alcotest.test_case "mid-run DDL re-plans the Qq" `Quick (fun () ->
        let ctx = Rql.create () in
        ignore (Rql.exec_data ctx "CREATE TABLE t (x INTEGER)");
        for i = 1 to 4 do
          ignore (Rql.exec_data ctx (Printf.sprintf "INSERT INTO t VALUES (%d)" i));
          ignore (Rql.declare_snapshot ctx)
        done;
        let qq = "SELECT x FROM t WHERE x >= 0" in
        let collate cond =
          ignore
            (Rql.exec_meta ctx
               (Printf.sprintf
                  "SELECT CollateData(snap_id, '%s', 'R2') FROM SnapIds WHERE %s" qq cond))
        in
        collate "snap_id <= 2";
        (* DDL on the data database between iterations of the same run *)
        ignore (Rql.exec_data ctx "CREATE INDEX ix ON t (x)");
        let i0 = get c_inval in
        collate "snap_id > 2";
        Alcotest.(check bool) "invalidated" true (get c_inval - i0 >= 1);
        Alcotest.(check bool) "run completed correctly" true
          ((Rql.exec_meta ctx "SELECT COUNT(*) FROM R2").E.rows = [ [| R.Int 10 |] ])) ]

(* Cross-session invalidation: the schema generation lives on the
   shared core, so DDL through ANY session must re-plan statements
   cached (or prepared) by every other session. *)
let session_tests =
  [ Alcotest.test_case "DDL in one session invalidates another session's plan" `Quick
      (fun () ->
        let db = fresh_emp () in
        Sqldb.Session.with_session db (fun a ->
            Sqldb.Session.with_session db (fun b ->
                let sql = "SELECT name FROM emp WHERE id = 3" in
                exec a sql;
                exec a sql;
                let b0 = get c_built in
                (* DDL through session [b] bumps the shared generation *)
                exec b "CREATE INDEX ix_emp ON emp (id)";
                exec a sql;
                Alcotest.(check bool) "replanned in a" true (get c_built - b0 >= 1);
                Alcotest.(check (list string)) "still correct" [ "cat" ]
                  (texts (E.exec a sql).E.rows))));
    Alcotest.test_case "prepared statement survives DDL from a sibling session" `Quick
      (fun () ->
        let db = fresh_emp () in
        Sqldb.Session.with_session db (fun a ->
            Sqldb.Session.with_session db (fun b ->
                let p = E.prepare a "SELECT name FROM emp WHERE id = ?" in
                Alcotest.(check (list string)) "before" [ "bob" ]
                  (texts (E.exec_prepared ~params:[| R.Int 2 |] p).E.rows);
                exec b "CREATE INDEX ix2_emp ON emp (id)";
                exec b "INSERT INTO emp VALUES (6, 'fay')";
                Alcotest.(check (list string)) "transparently replanned" [ "fay" ]
                  (texts (E.exec_prepared ~params:[| R.Int 6 |] p).E.rows))));
    Alcotest.test_case "sessions keep independent hit/miss accounting" `Quick (fun () ->
        let db = fresh_emp () in
        Sqldb.Session.with_session db (fun a ->
            Sqldb.Session.with_session db (fun b ->
                let sql = "SELECT COUNT(*) FROM emp" in
                exec a sql;
                exec a sql;
                exec a sql;
                (* b never ran the statement: its private cache is cold *)
                let b0 = get c_built in
                exec b sql;
                Alcotest.(check bool) "b plans its own copy" true (get c_built - b0 >= 1)))) ]

let () =
  Alcotest.run "plan"
    [ ("prepared", prepared_tests);
      ("cache", cache_tests);
      ("rql", rql_tests);
      ("sessions", session_tests) ]
