(* Qq rewriting tests (paper §3): AS OF injection and current_snapshot()
   substitution, including the quote/comment pitfalls. *)

module Rw = Rql.Rewrite

let rewrite sql sid = Rw.rewrite sql ~sid

let tests =
  [ Alcotest.test_case "paper example" `Quick (fun () ->
        Alcotest.(check string) "rewritten"
          "SELECT AS OF 5 DISTINCT 5 FROM LoggedIn WHERE l_userid = 'UserB'"
          (rewrite "SELECT DISTINCT current_snapshot() FROM LoggedIn WHERE l_userid = 'UserB'" 5));
    Alcotest.test_case "as of injected after first select" `Quick (fun () ->
        Alcotest.(check string) "simple" "SELECT AS OF 3 * FROM t" (rewrite "SELECT * FROM t" 3));
    Alcotest.test_case "case-insensitive select" `Quick (fun () ->
        Alcotest.(check string) "lower" "select AS OF 2 x FROM t" (rewrite "select x FROM t" 2));
    Alcotest.test_case "select inside string literal untouched" `Quick (fun () ->
        Alcotest.(check string) "string"
          "SELECT AS OF 1 'select x' FROM t"
          (rewrite "SELECT 'select x' FROM t" 1));
    Alcotest.test_case "current_snapshot inside string untouched" `Quick (fun () ->
        Alcotest.(check string) "string"
          "SELECT AS OF 1 'current_snapshot()' FROM t"
          (rewrite "SELECT 'current_snapshot()' FROM t" 1));
    Alcotest.test_case "select inside comment untouched" `Quick (fun () ->
        Alcotest.(check string) "comment"
          "/* select */ SELECT AS OF 4 x FROM t"
          (rewrite "/* select */ SELECT x FROM t" 4));
    Alcotest.test_case "multiple current_snapshot occurrences" `Quick (fun () ->
        Alcotest.(check string) "both"
          "SELECT AS OF 9 9, 9 FROM t"
          (rewrite "SELECT current_snapshot(), current_snapshot() FROM t" 9));
    Alcotest.test_case "current_snapshot with inner whitespace" `Quick (fun () ->
        Alcotest.(check string) "spaces"
          "SELECT AS OF 7 7 FROM t"
          (rewrite "SELECT current_snapshot ( ) FROM t" 7));
    Alcotest.test_case "identifier containing the word is untouched" `Quick (fun () ->
        Alcotest.(check string) "prefix"
          "SELECT AS OF 1 current_snapshot_count FROM t"
          (rewrite "SELECT current_snapshot_count FROM t" 1));
    Alcotest.test_case "escaped quotes in strings" `Quick (fun () ->
        Alcotest.(check string) "escape"
          "SELECT AS OF 2 x FROM t WHERE s = 'it''s select'"
          (rewrite "SELECT x FROM t WHERE s = 'it''s select'" 2));
    Alcotest.test_case "dot-qualified name is a different identifier" `Quick (fun () ->
        (* regression: substituting inside t.current_snapshot produced t.5 *)
        Alcotest.(check string) "qualified"
          "SELECT AS OF 5 t.current_snapshot FROM t"
          (rewrite "SELECT t.current_snapshot FROM t" 5));
    Alcotest.test_case "string literal straddling occurrences untouched" `Quick (fun () ->
        Alcotest.(check string) "mixed"
          "SELECT AS OF 3 3, 'current_snapshot() and select' FROM t"
          (rewrite "SELECT current_snapshot(), 'current_snapshot() and select' FROM t" 3));
    Alcotest.test_case "parameterize binds AS OF and current_snapshot" `Quick (fun () ->
        let open Sqldb.Ast in
        match Sqldb.Parser.parse_one "SELECT current_snapshot(), x FROM t" with
        | Select sel ->
          let p = Rw.parameterize sel in
          Alcotest.(check bool) "as_of is param" true (p.as_of = Some (Param 0));
          (match p.items with
          | Sel_expr (Param 0, _) :: _ -> ()
          | _ -> Alcotest.fail "current_snapshot() not parameterized")
        | _ -> Alcotest.fail "parse");
    Alcotest.test_case "parameterized Qq runs via prepared statement" `Quick (fun () ->
        let db = Sqldb.Engine.create () in
        ignore (Sqldb.Engine.exec db "CREATE TABLE t (x INTEGER)");
        ignore (Sqldb.Engine.exec db "INSERT INTO t VALUES (1)");
        let sid =
          Option.get (Sqldb.Engine.exec db "COMMIT WITH SNAPSHOT").Sqldb.Engine.snapshot
        in
        match Sqldb.Engine.parse "SELECT current_snapshot() AS sid FROM t" with
        | Sqldb.Ast.Select sel ->
          let prep = Sqldb.Engine.prepare_select db ~key:"rw-test" (Rw.parameterize sel) in
          let res =
            Sqldb.Engine.exec_prepared ~params:[| Storage.Record.Int sid |] prep
          in
          Alcotest.(check bool) "row is sid" true
            (res.Sqldb.Engine.rows = [ [| Storage.Record.Int sid |] ])
        | _ -> Alcotest.fail "parse");
    Alcotest.test_case "non-select rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (rewrite "DELETE FROM t" 1);
             false
           with Rw.Error _ -> true));
    Alcotest.test_case "rewritten query parses and runs" `Quick (fun () ->
        let db = Sqldb.Engine.create () in
        ignore (Sqldb.Engine.exec db "CREATE TABLE t (x INTEGER)");
        ignore (Sqldb.Engine.exec db "INSERT INTO t VALUES (1)");
        let sid =
          Option.get (Sqldb.Engine.exec db "COMMIT WITH SNAPSHOT").Sqldb.Engine.snapshot
        in
        let q = rewrite "SELECT current_snapshot() AS sid FROM t" sid in
        let res = Sqldb.Engine.exec db q in
        Alcotest.(check int) "one row" 1 (List.length res.Sqldb.Engine.rows)) ]

let () = Alcotest.run "rewrite" [ ("rewrite", tests) ]
