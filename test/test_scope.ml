(* Scoped observability tests: histogram/table merge (the roll-up
   primitive), scope charging and roll-up, drop and reset lifecycle,
   the (table, snapshot) heat partition invariant, live progress +
   cooperative cancellation of RQL runs, event-log attribution, and
   Prometheus label escaping. *)

module M = Obs.Metrics
module S = Obs.Scope
module P = Obs.Progress
module E = Sqldb.Engine
module R = Storage.Record

(* Run [f] in a fresh child scope that is dropped afterwards, so tests
   do not leave scopes behind for each other. *)
let with_child ?parent name f =
  let s = S.create ?parent name in
  Fun.protect ~finally:(fun () -> S.drop s) (fun () -> f s)

(* Local value of counter [name] inside scope [s] (0 when the scope
   never charged it). *)
let local_counter s name =
  match List.assoc_opt name (S.metric_items s) with
  | Some (M.M_counter c) -> M.Counter.get c
  | Some _ -> Alcotest.failf "%s is not a counter in scope %s" name (S.scope_name s)
  | None -> 0

(* --- merge: the roll-up primitive -------------------------------------- *)

(* Property: recording a set of observations split across two
   histograms and merging them equals recording them all into one —
   exact counts and buckets, quantiles identical (merge is bucket-wise,
   so resolution is the bucket grid either way). *)
let merge_prop =
  let gen =
    QCheck.make
      ~print:QCheck.Print.(pair (list float) (list float))
      QCheck.Gen.(
        pair
          (list_size (int_bound 80) (map (fun x -> 1e-7 +. (x *. 10.)) (float_bound_exclusive 1.)))
          (list_size (int_bound 80) (map (fun x -> 1e-5 +. (x *. 1000.)) (float_bound_exclusive 1.))))
  in
  QCheck.Test.make ~name:"histogram merge = single histogram" ~count:100 gen
    (fun (xs, ys) ->
      let t1 = M.make_table () and t2 = M.make_table () and tr = M.make_table () in
      let h1 = M.histogram_in t1 "m" and h2 = M.histogram_in t2 "m" in
      let href = M.histogram_in tr "m" in
      List.iter (M.Histogram.observe h1) xs;
      List.iter (M.Histogram.observe h2) ys;
      List.iter (M.Histogram.observe href) (xs @ ys);
      let merged = M.histogram_in (M.make_table ()) "m" in
      M.Histogram.merge ~into:merged h1;
      M.Histogram.merge ~into:merged h2;
      M.Histogram.count merged = M.Histogram.count href
      && M.Histogram.cumulative_buckets merged = M.Histogram.cumulative_buckets href
      && Float.abs (M.Histogram.sum merged -. M.Histogram.sum href) <= 1e-9
      && M.Histogram.min_value merged = M.Histogram.min_value href
      && M.Histogram.max_value merged = M.Histogram.max_value href
      && List.for_all
           (fun q ->
             Float.abs (M.Histogram.quantile merged q -. M.Histogram.quantile href q)
             <= 1e-12)
           [ 0.5; 0.95; 0.99 ])

let merge_tests =
  [ QCheck_alcotest.to_alcotest merge_prop;
    Alcotest.test_case "table merge adds counters and gauges" `Quick (fun () ->
        let a = M.make_table () and b = M.make_table () in
        M.Counter.add (M.counter_in a "c") 3;
        M.Gauge.set (M.gauge_in a "g") 1.5;
        M.Counter.add (M.counter_in b "c") 4;
        M.Counter.add (M.counter_in b "only_b") 7;
        M.Gauge.add (M.gauge_in b "g") 2.;
        M.merge ~into:a b;
        Alcotest.(check int) "counter summed" 7 (M.Counter.get (M.counter_in a "c"));
        Alcotest.(check int) "new counter copied" 7 (M.Counter.get (M.counter_in a "only_b"));
        Alcotest.(check (float 1e-9)) "gauge summed" 3.5 (M.Gauge.get (M.gauge_in a "g")));
    Alcotest.test_case "merge rejects kind mismatch" `Quick (fun () ->
        let a = M.make_table () and b = M.make_table () in
        ignore (M.counter_in a "m");
        ignore (M.gauge_in b "m");
        Alcotest.check_raises "mismatch"
          (M.Error "metric m exists with another kind") (fun () -> M.merge ~into:a b)) ]

(* --- scope charging and roll-up ---------------------------------------- *)

let rollup_tests =
  [ Alcotest.test_case "increments charge the whole chain up to root" `Quick (fun () ->
        let h = S.counter "test.scope_rollup" in
        S.set h 0;
        with_child "parent" (fun parent ->
            with_child ~parent "leaf" (fun leaf ->
                S.with_scope leaf (fun () -> S.add h 5);
                S.with_scope parent (fun () -> S.add h 3);
                S.incr h (* root only: no scope active *);
                Alcotest.(check int) "root total" 9 (S.get h);
                Alcotest.(check int) "parent subtree-inclusive" 8
                  (local_counter parent "test.scope_rollup");
                Alcotest.(check int) "leaf local" 5
                  (local_counter leaf "test.scope_rollup"))));
    Alcotest.test_case "handle chain re-resolves when the scope changes" `Quick (fun () ->
        let h = S.counter "test.scope_switch" in
        S.set h 0;
        with_child "a" (fun a ->
            with_child "b" (fun b ->
                S.with_scope a (fun () -> S.incr h);
                S.with_scope b (fun () -> S.add h 2);
                S.with_scope a (fun () -> S.incr h);
                Alcotest.(check int) "a local" 2 (local_counter a "test.scope_switch");
                Alcotest.(check int) "b local" 2 (local_counter b "test.scope_switch");
                Alcotest.(check int) "root" 4 (S.get h)))) ]

(* --- lifecycle: drop and reset ----------------------------------------- *)

let lifecycle_tests =
  [ Alcotest.test_case "dropped child keeps totals in root and (dropped) bucket" `Quick
      (fun () ->
        let h = S.counter "test.scope_drop" in
        S.set h 0;
        with_child "session" (fun parent ->
            let child = S.create ~parent "worker" in
            S.with_scope child (fun () -> S.add h 6);
            S.drop child;
            Alcotest.(check bool) "child detached" false (S.is_live child);
            Alcotest.(check bool) "child gone from the tree" true
              (List.for_all (fun s -> s != child) (S.scopes ()));
            Alcotest.(check int) "root total survives" 6 (S.get h);
            Alcotest.(check int) "parent subtree total survives" 6
              (local_counter parent "test.scope_drop");
            let bucket =
              List.find
                (fun s ->
                  S.scope_name s = S.dropped_bucket_name && S.parent_id s = S.id parent)
                (S.scopes ())
            in
            Alcotest.(check int) "(dropped) holds the child's distribution" 6
              (local_counter bucket "test.scope_drop")));
    Alcotest.test_case "reset zeroes children in place (no stale sys_scopes rows)" `Quick
      (fun () ->
        let db = E.create ~snapshots:false () in
        let h = S.counter "test.scope_reset" in
        with_child "resettable" (fun child ->
            S.with_scope child (fun () -> S.add h 9);
            Alcotest.(check int) "charged" 9 (local_counter child "test.scope_reset");
            M.reset_all ();
            (* the scope survives the reset; its values are zero, not stale *)
            Alcotest.(check bool) "scope still in the tree" true
              (List.exists (fun s -> s == child) (S.scopes ()));
            Alcotest.(check int) "local zeroed" 0 (local_counter child "test.scope_reset");
            Alcotest.(check int) "root zeroed" 0 (S.get h);
            let rows =
              E.query db
                (Printf.sprintf
                   "SELECT value FROM sys_scopes WHERE scope_id = %d AND metric = \
                    'test.scope_reset'"
                   (S.id child))
            in
            match rows with
            | [ [| R.Real v |] ] -> Alcotest.(check (float 0.)) "sys_scopes zeroed" 0. v
            | [ [| R.Int v |] ] -> Alcotest.(check int) "sys_scopes zeroed" 0 v
            | _ -> Alcotest.failf "expected one zeroed row, got %d" (List.length rows))) ]

(* --- heat: per-(table, snapshot) attribution partitions page reads ----- *)

(* Build a small multi-snapshot database and run a retrospective query,
   then check the root heat matrix sums exactly to storage.page_reads —
   across current-state and AS OF reads, SPT builds, everything. *)
let make_snapshot_ctx () =
  let ctx = Rql.create () in
  let e sql = ignore (E.exec ctx.Rql.data sql) in
  e "CREATE TABLE t (a INTEGER, b TEXT)";
  for i = 1 to 40 do
    e (Printf.sprintf "INSERT INTO t VALUES (%d, 'row%d')" i i)
  done;
  ignore (Rql.declare_snapshot ctx);
  e "BEGIN";
  e "UPDATE t SET b = 'updated' WHERE a <= 10";
  ignore (Rql.declare_snapshot ctx);
  e "BEGIN";
  e "DELETE FROM t WHERE a > 35";
  ignore (Rql.declare_snapshot ctx);
  ctx

let heat_tests =
  [ Alcotest.test_case "root heat partitions storage.page_reads exactly" `Quick (fun () ->
        Storage.Stats.reset Storage.Stats.global;
        let ctx = make_snapshot_ctx () in
        ignore
          (Rql.collate_data ctx ~qs:"SELECT snap_id FROM SnapIds"
             ~qq:"SELECT a, b, current_snapshot() AS sid FROM t" ~table:"R");
        ignore (E.exec ctx.Rql.data "SELECT AS OF 1 COUNT(a) FROM t");
        let total = S.page_reads_total () in
        Alcotest.(check bool) "work happened" true (total > 0);
        Alcotest.(check int) "root heat total = page_reads" total (S.heat_total S.root);
        (* per-device split matches the per-device counters *)
        let db_sum, pl_sum =
          List.fold_left
            (fun (d, p) (_, db, pl) -> (d + db, p + pl))
            (0, 0) (S.heat_items S.root)
        in
        Alcotest.(check int) "db split" (S.get Storage.Stats.c_db_page_reads) db_sum;
        Alcotest.(check int) "pagelog split" (S.get Storage.Stats.c_pagelog_reads) pl_sum;
        (* snapshot-attributed rows exist: the AS OF read and the RQL
           iterations charge cells labeled with their snapshot id *)
        Alcotest.(check bool) "snapshot-labeled cells" true
          (List.exists (fun ((_, snap), _, _) -> snap >= 1) (S.heat_items S.root));
        Alcotest.(check bool) "table-labeled cells" true
          (List.exists (fun ((tbl, _), _, _) -> tbl = "t") (S.heat_items S.root)));
    Alcotest.test_case "sys_heat root rows sum to storage.page_reads (SQL)" `Quick
      (fun () ->
        let ctx = make_snapshot_ctx () in
        let db = ctx.Rql.data in
        let sum_sql = "SELECT SUM(reads) FROM sys_heat WHERE scope_id = 0" in
        (* warm the catalog and plan caches so the measured run does no
           page reads of its own *)
        ignore (E.exec db sum_sql);
        let expected = S.page_reads_total () in
        let got = E.int_scalar db sum_sql in
        Alcotest.(check int) "cached sys_heat query reads no pages" expected
          (S.page_reads_total ());
        Alcotest.(check int) "SQL sum = page_reads" expected got);
    Alcotest.test_case "a child scope re-attributes a subset of root heat" `Quick
      (fun () ->
        let ctx = make_snapshot_ctx () in
        let db = ctx.Rql.data in
        with_child "session" (fun child ->
            Sqldb.Db.set_scope db child;
            Fun.protect ~finally:(fun () -> Sqldb.Db.set_scope db S.root) (fun () ->
                ignore (E.exec db "SELECT AS OF 2 COUNT(a) FROM t"));
            let child_total = S.heat_total child in
            Alcotest.(check bool) "child saw reads" true (child_total > 0);
            Alcotest.(check bool) "child is a subset of root" true
              (child_total <= S.heat_total S.root);
            Alcotest.(check int) "child heat = child page_reads counter"
              (local_counter child "storage.page_reads") child_total)) ]

(* --- progress and cancellation ----------------------------------------- *)

let progress_tests =
  [ Alcotest.test_case "a completed run reports done with full counts" `Quick (fun () ->
        let ctx = make_snapshot_ctx () in
        P.clear ();
        ignore
          (Rql.collate_data ctx ~qs:"SELECT snap_id FROM SnapIds"
             ~qq:"SELECT a, current_snapshot() AS sid FROM t" ~table:"R");
        match P.runs () with
        | [ p ] ->
          Alcotest.(check string) "status" "done" (P.status_to_string p.P.pr_status);
          Alcotest.(check int) "iterations" 3 p.P.pr_done;
          Alcotest.(check int) "total" 3 p.P.pr_total;
          Alcotest.(check string) "mechanism" "CollateData" p.P.pr_mechanism;
          Alcotest.(check bool) "pages accumulated" true (p.P.pr_pages > 0);
          Alcotest.(check bool) "weights from ANALYZE ARCHIVE" true
            (Array.length p.P.pr_weights = 3)
        | runs -> Alcotest.failf "expected 1 run, got %d" (List.length runs));
    Alcotest.test_case "cancel mid-run stops within one iteration, consistently" `Quick
      (fun () ->
        let ctx = make_snapshot_ctx () in
        P.clear ();
        Obs.Eventlog.clear ();
        (* the Qq raises the flag while iteration 1 is executing; the
           loop must stop at the next iteration boundary *)
        E.register_fn ctx.Rql.data "request_cancel" (fun _ ->
            ignore (P.request_cancel ());
            R.Int 1);
        (try
           ignore
             (Rql.collate_data ctx ~qs:"SELECT snap_id FROM SnapIds"
                ~qq:"SELECT a, request_cancel() AS rc FROM t" ~table:"R");
           Alcotest.fail "expected Rql.Cancelled"
         with Rql.Cancelled { mechanism; iterations_done; run_id = _ } ->
           Alcotest.(check string) "mechanism" "CollateData" mechanism;
           Alcotest.(check int) "stopped after one iteration" 1 iterations_done);
        (* the run is marked cancelled with an accurate done-count *)
        (match P.runs () with
        | [ p ] ->
          Alcotest.(check string) "status" "cancelled" (P.status_to_string p.P.pr_status);
          Alcotest.(check int) "done" 1 p.P.pr_done;
          Alcotest.(check int) "total" 3 p.P.pr_total
        | runs -> Alcotest.failf "expected 1 run, got %d" (List.length runs));
        (* both databases stay consistent *)
        (match E.exec ctx.Rql.data "PRAGMA integrity_check" with
        | { E.rows = [ [| R.Text "ok" |] ]; _ } -> ()
        | _ -> Alcotest.fail "data integrity_check not ok");
        (match E.exec ctx.Rql.meta "PRAGMA integrity_check" with
        | { E.rows = [ [| R.Text "ok" |] ]; _ } -> ()
        | _ -> Alcotest.fail "meta integrity_check not ok");
        (* the completed iteration's rows are durable in T *)
        Alcotest.(check int) "iteration 1 rows in T" 40
          (E.int_scalar ctx.Rql.meta "SELECT COUNT(a) FROM R");
        (* sys_progress reports it *)
        (match
           E.query ctx.Rql.meta
             "SELECT status, iterations_done, iterations_total FROM sys_progress"
         with
        | [ [| R.Text st; R.Int d; R.Int t |] ] ->
          Alcotest.(check string) "sys_progress status" "cancelled" st;
          Alcotest.(check int) "sys_progress done" 1 d;
          Alcotest.(check int) "sys_progress total" 3 t
        | rows -> Alcotest.failf "expected 1 sys_progress row, got %d" (List.length rows));
        (* ... and the event log carries the transition *)
        Alcotest.(check bool) "rql_progress event logged" true
          (List.exists
             (fun (e : Obs.Eventlog.event) ->
               e.Obs.Eventlog.ev_kind = "rql_progress"
               && List.assoc_opt "status" e.Obs.Eventlog.ev_fields
                  = Some (Obs.Json.Str "cancelled"))
             (Obs.Eventlog.events ())));
    Alcotest.test_case "cancelling a finished run is a no-op" `Quick (fun () ->
        let ctx = make_snapshot_ctx () in
        P.clear ();
        ignore
          (Rql.collate_data ctx ~qs:"SELECT snap_id FROM SnapIds"
             ~qq:"SELECT a, current_snapshot() AS sid FROM t" ~table:"R");
        Alcotest.(check int) "nothing to flag" 0 (P.request_cancel ()));
    Alcotest.test_case "ETA drains to zero as iterations complete" `Quick (fun () ->
        let p = P.start ~total:4 ~mechanism:"CollateData" ~detail:"q" () in
        P.set_weights p [| 1.; 1.; 1.; 1. |];
        P.note_iteration p ~pages:10;
        P.note_iteration p ~pages:20;
        Alcotest.(check bool) "mid-run ETA positive" true (p.P.pr_eta >= 0.);
        P.note_iteration p ~pages:30;
        P.note_iteration p ~pages:40;
        P.finish p P.Done;
        Alcotest.(check (float 0.)) "final ETA" 0. p.P.pr_eta;
        Alcotest.(check int) "pages tracked" 40 p.P.pr_pages) ]

(* --- event-log attribution --------------------------------------------- *)

let eventlog_tests =
  [ Alcotest.test_case "events carry ambient scope and run ids" `Quick (fun () ->
        Obs.Eventlog.clear ();
        with_child "session" (fun child ->
            let p = P.start ~mechanism:"CollateData" ~detail:"q" () in
            P.with_active p (fun () ->
                S.with_scope child (fun () ->
                    Obs.Eventlog.log ~kind:"slow_query"
                      [ ("query", Obs.Json.Str "SELECT 1") ]));
            P.finish p P.Done;
            match Obs.Eventlog.events () with
            | [ e ] ->
              Alcotest.(check int) "scope id" (S.id child) e.Obs.Eventlog.ev_scope;
              Alcotest.(check int) "run id" p.P.pr_id e.Obs.Eventlog.ev_run;
              let json =
                Obs.Json.to_string (Obs.Eventlog.event_to_json e)
              in
              let has needle =
                let nl = String.length needle and hl = String.length json in
                let rec at i = i + nl <= hl && (String.sub json i nl = needle || at (i + 1)) in
                at 0
              in
              Alcotest.(check bool) "json has scope" true (has "\"scope\":");
              Alcotest.(check bool) "json has rql_run" true (has "\"rql_run\":")
            | es -> Alcotest.failf "expected 1 event, got %d" (List.length es)));
    Alcotest.test_case "slow-query events inherit the handle's scope" `Quick (fun () ->
        Obs.Eventlog.clear ();
        let db = E.create ~snapshots:false () in
        ignore (E.exec db "CREATE TABLE s (x INTEGER)");
        with_child "conn" (fun child ->
            Sqldb.Db.set_scope db child;
            E.set_slow_query_threshold db (Some 0.);
            ignore (E.exec db "SELECT x FROM s");
            let slow =
              List.filter
                (fun (e : Obs.Eventlog.event) -> e.Obs.Eventlog.ev_kind = "slow_query")
                (Obs.Eventlog.events ())
            in
            Alcotest.(check bool) "logged" true (slow <> []);
            List.iter
              (fun (e : Obs.Eventlog.event) ->
                Alcotest.(check int) "scope attributed" (S.id child)
                  e.Obs.Eventlog.ev_scope)
              slow)) ]

(* --- Prometheus export ------------------------------------------------- *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
  nl = 0 || at 0

let prometheus_tests =
  [ Alcotest.test_case "label values are escaped" `Quick (fun () ->
        let h = S.counter "test.prom_scoped" in
        S.set h 0;
        with_child "quo\"te\\back\nline" (fun child ->
            S.with_scope child (fun () -> S.incr h);
            let text = M.to_prometheus () in
            Alcotest.(check bool) "escaped scope label" true
              (contains ~needle:"scope=\"quo\\\"te\\\\back\\nline\"" text)));
    Alcotest.test_case "metric names with . and - are sanitized" `Quick (fun () ->
        let h = S.counter "test.weird-name" in
        S.set h 3;
        let text = M.to_prometheus () in
        Alcotest.(check bool) "sanitized family name" true
          (contains ~needle:"rql_test_weird_name 3" text);
        Alcotest.(check bool) "no raw dot/dash names" false
          (contains ~needle:"test.weird-name" text));
    Alcotest.test_case "heat matrix exports as its own labeled family" `Quick (fun () ->
        let ctx = make_snapshot_ctx () in
        ignore (E.exec ctx.Rql.data "SELECT AS OF 1 COUNT(a) FROM t");
        let text = M.to_prometheus () in
        Alcotest.(check bool) "family present" true
          (contains ~needle:"rql_page_reads_heat{" text);
        Alcotest.(check bool) "table label" true (contains ~needle:"table=\"t\"" text);
        Alcotest.(check bool) "device label" true (contains ~needle:"device=\"" text)) ]

let () =
  Alcotest.run "scope"
    [ ("merge", merge_tests);
      ("rollup", rollup_tests);
      ("lifecycle", lifecycle_tests);
      ("heat", heat_tests);
      ("progress", progress_tests);
      ("eventlog", eventlog_tests);
      ("prometheus", prometheus_tests) ]
