(* Session-oriented engine tests: per-connection session state over a
   shared core, Domain-parallel AS OF readers checked against a
   sequential oracle, and the parallel RQL snapshot loop checked
   byte-identical to the sequential one over the UW fixture. *)

module R = Storage.Record
module E = Sqldb.Engine
module S = Sqldb.Session
module IS = Rql.Iter_stats

let value = Alcotest.testable R.pp_value R.equal_value
let row = Alcotest.(list value)

let rows_of res = List.map Array.to_list res.E.rows
let q db sql = rows_of (E.exec db sql)

(* --- session lifecycle over a shared core ------------------------------ *)

let lifecycle =
  [ Alcotest.test_case "sessions share tables and catalog with the root" `Quick (fun () ->
        let db = Sqldb.Db.create () in
        ignore (E.exec db "CREATE TABLE t (k INTEGER, v TEXT)");
        ignore (E.exec db "INSERT INTO t VALUES (1,'a'), (2,'b')");
        S.with_session db (fun s ->
            Alcotest.(check (list row)) "reads committed data"
              [ [ R.Int 1; R.Text "a" ]; [ R.Int 2; R.Text "b" ] ]
              (q s "SELECT * FROM t ORDER BY k");
            ignore (E.exec s "INSERT INTO t VALUES (3,'c')"));
        Alcotest.(check int) "write visible on root" 3
          (match E.scalar db "SELECT COUNT(*) FROM t" with R.Int n -> n | _ -> -1));
    Alcotest.test_case "session ids are distinct; close unregisters" `Quick (fun () ->
        let db = Sqldb.Db.create () in
        let a = S.create db and b = S.create db in
        Alcotest.(check bool) "distinct ids" true (S.id a <> S.id b);
        Alcotest.(check int) "three live sessions" 3 (List.length (S.all db));
        S.close a;
        Alcotest.(check int) "two after close" 2 (List.length (S.all db));
        S.close a (* idempotent *);
        Alcotest.(check int) "still two" 2 (List.length (S.all db));
        S.close b);
    Alcotest.test_case "prepared statements and plan cache are per-session" `Quick (fun () ->
        let db = Sqldb.Db.create () in
        ignore (E.exec db "CREATE TABLE t (k INTEGER)");
        S.with_session db (fun s ->
            let p = E.prepare s "SELECT k FROM t" in
            ignore (E.exec_prepared p);
            Alcotest.(check int) "session prepared one" 1 s.Sqldb.Db.prepared_count;
            Alcotest.(check int) "root prepared none" 0 db.Sqldb.Db.prepared_count));
    Alcotest.test_case "sys_sessions lists every live session" `Quick (fun () ->
        let db = Sqldb.Db.create () in
        S.with_session db (fun s ->
            ignore s;
            let ids =
              List.map
                (function [ R.Int id ] -> id | _ -> -1)
                (q db "SELECT session_id FROM sys_sessions ORDER BY session_id")
            in
            Alcotest.(check (list int)) "root + derived"
              (List.map S.id (S.all db) |> List.sort compare)
              ids));
    Alcotest.test_case "explicit transaction is core-owned: second BEGIN errors" `Quick
      (fun () ->
        let db = Sqldb.Db.create () in
        ignore (E.exec db "CREATE TABLE t (k INTEGER)");
        S.with_session db (fun s ->
            ignore (E.exec db "BEGIN");
            Alcotest.check_raises "nested begin rejected"
              (E.Error "transaction already open") (fun () ->
                ignore (E.exec s "BEGIN"));
            ignore (E.exec db "COMMIT"))) ]

(* --- Domain-parallel AS OF readers vs a sequential oracle -------------- *)

(* Build the UW history once; every reader session re-runs the same
   AS OF aggregate per snapshot and must reproduce the oracle exactly. *)
let parallel_asof =
  [ Alcotest.test_case "4 parallel reader sessions match the sequential oracle" `Quick
      (fun () ->
        let ctx, _st, sids =
          Tpch.Workload.build_history ~sf:0.002 ~uw:Tpch.Workload.uw30 ~snapshots:6 ()
        in
        let db = ctx.Rql.data in
        let query sid =
          Printf.sprintf
            "SELECT AS OF %d COUNT(*), SUM(o_totalprice) FROM orders" sid
        in
        let oracle = List.map (fun sid -> (sid, q db (query sid))) sids in
        let readers = 4 in
        let results = Array.make readers [] in
        let doms =
          List.init readers (fun w ->
              Domain.spawn (fun () ->
                  S.with_session db (fun s ->
                      results.(w) <- List.map (fun sid -> (sid, q s (query sid))) sids)))
        in
        List.iter Domain.join doms;
        Array.iteri
          (fun w got ->
            List.iter2
              (fun (sid, want) (sid', have) ->
                Alcotest.(check int) "same sid" sid sid';
                Alcotest.(check (list row))
                  (Printf.sprintf "reader %d, snapshot %d" w sid)
                  want have)
              oracle got)
          results) ]

(* --- parallel RQL loop vs the sequential loop --------------------------- *)

let sorted_table ctx table =
  List.sort compare (q ctx.Rql.meta (Printf.sprintf "SELECT * FROM %s" table))

let parallel_rql =
  [ Alcotest.test_case "parallel CollateData is byte-identical to sequential" `Quick
      (fun () ->
        let ctx, _st, _ =
          Tpch.Workload.build_history ~sf:0.002 ~uw:Tpch.Workload.uw30 ~snapshots:6 ()
        in
        let qs = "SELECT snap_id FROM SnapIds" in
        let qq = "SELECT o_orderkey, o_totalprice FROM orders WHERE o_totalprice > 1000" in
        let seq = Rql.collate_data ctx ~qs ~qq ~table:"Cs" in
        let par = Rql.collate_data ~domains:4 ctx ~qs ~qq ~table:"Cp" in
        Alcotest.(check int) "same row count" seq.IS.result_rows par.IS.result_rows;
        Alcotest.(check (list row)) "same rows" (sorted_table ctx "Cs")
          (sorted_table ctx "Cp");
        Alcotest.(check (list int)) "same snapshot order"
          (List.map (fun it -> it.IS.snap_id) seq.IS.iterations)
          (List.map (fun it -> it.IS.snap_id) par.IS.iterations));
    Alcotest.test_case "parallel AggTable and intervals match sequential" `Quick (fun () ->
        let ctx, _st, _ =
          Tpch.Workload.build_history ~sf:0.002 ~uw:Tpch.Workload.uw30 ~snapshots:5 ()
        in
        let qs = "SELECT snap_id FROM SnapIds" in
        ignore
          (Rql.aggregate_data_in_table ctx ~qs
             ~qq:"SELECT o_orderstatus, COUNT(*) AS c FROM orders GROUP BY o_orderstatus"
             ~table:"As" ~aggs:[ ("c", "sum") ]);
        ignore
          (Rql.aggregate_data_in_table ~domains:3 ctx ~qs
             ~qq:"SELECT o_orderstatus, COUNT(*) AS c FROM orders GROUP BY o_orderstatus"
             ~table:"Ap" ~aggs:[ ("c", "sum") ]);
        Alcotest.(check (list row)) "agg rows" (sorted_table ctx "As")
          (sorted_table ctx "Ap");
        ignore
          (Rql.collate_data_into_intervals ctx ~qs
             ~qq:"SELECT o_orderkey FROM orders WHERE o_totalprice > 50000" ~table:"Is");
        ignore
          (Rql.collate_data_into_intervals ~domains:4 ctx ~qs
             ~qq:"SELECT o_orderkey FROM orders WHERE o_totalprice > 50000" ~table:"Ip");
        (* Intervals are order-sensitive: ordered application must make
           even the unsorted tables identical. *)
        Alcotest.(check (list row)) "interval rows (raw order)"
          (q ctx.Rql.meta "SELECT * FROM Is")
          (q ctx.Rql.meta "SELECT * FROM Ip"));
    Alcotest.test_case "parallel run attributes archive reads to iterations" `Quick
      (fun () ->
        let ctx, _st, _ =
          Tpch.Workload.build_history ~sf:0.002 ~uw:Tpch.Workload.uw30 ~snapshots:5 ()
        in
        let run =
          Rql.collate_data ~domains:4 ctx ~qs:"SELECT snap_id FROM SnapIds"
            ~qq:"SELECT o_orderkey FROM orders" ~table:"T"
        in
        let reads =
          List.fold_left (fun a it -> a + it.IS.pagelog_reads) 0 run.IS.iterations
        in
        Alcotest.(check bool)
          (Printf.sprintf "archive reads counted (%d)" reads)
          true (reads > 0);
        List.iter
          (fun (it : IS.iteration) ->
            Alcotest.(check bool) "io_s >= 0" true (it.IS.io_s >= 0.))
          run.IS.iterations) ]

let () =
  Alcotest.run "session"
    [ ("lifecycle", lifecycle);
      ("parallel-asof", parallel_asof);
      ("parallel-rql", parallel_rql) ]
