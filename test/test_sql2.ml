(* Tests for the extended SQL surface: LEFT JOIN, subqueries (scalar /
   IN / EXISTS), UNION [ALL], CAST and EXPLAIN. *)

module R = Storage.Record
module E = Sqldb.Engine

let value = Alcotest.testable R.pp_value R.equal_value
let row = Alcotest.(list value)

let rows_of res = List.map Array.to_list res.E.rows

let fresh () =
  let db = E.create ~snapshots:false () in
  ignore (E.exec db "CREATE TABLE emp (id INTEGER, name TEXT, dept INTEGER, salary INTEGER)");
  ignore (E.exec db "CREATE TABLE dept (did INTEGER, dname TEXT)");
  ignore
    (E.exec db
       "INSERT INTO emp VALUES (1,'ann',10,100), (2,'bob',20,200), (3,'cid',NULL,150), \
        (4,'dee',30,300)");
  ignore (E.exec db "INSERT INTO dept VALUES (10,'eng'), (20,'ops')");
  db

let left_join =
  [ Alcotest.test_case "unmatched rows padded with nulls" `Quick (fun () ->
        let db = fresh () in
        let res =
          E.exec db
            "SELECT name, dname FROM emp LEFT JOIN dept ON emp.dept = dept.did ORDER BY name"
        in
        Alcotest.(check (list row)) "rows"
          [ [ R.Text "ann"; R.Text "eng" ]; [ R.Text "bob"; R.Text "ops" ];
            [ R.Text "cid"; R.Null ]; [ R.Text "dee"; R.Null ] ]
          (rows_of res));
    Alcotest.test_case "where after left join filters padded rows" `Quick (fun () ->
        let db = fresh () in
        Alcotest.(check int) "only unmatched" 2
          (E.int_scalar db
             "SELECT COUNT(*) FROM emp LEFT JOIN dept ON emp.dept = dept.did WHERE dname IS \
              NULL"));
    Alcotest.test_case "on condition filters inner side only" `Quick (fun () ->
        let db = fresh () in
        let res =
          E.exec db
            "SELECT name, dname FROM emp LEFT JOIN dept ON emp.dept = dept.did AND dname <> \
             'ops' ORDER BY name"
        in
        Alcotest.(check (list row)) "ops filtered to null"
          [ [ R.Text "ann"; R.Text "eng" ]; [ R.Text "bob"; R.Null ]; [ R.Text "cid"; R.Null ];
            [ R.Text "dee"; R.Null ] ]
          (rows_of res));
    Alcotest.test_case "left join without on rejected" `Quick (fun () ->
        let db = fresh () in
        Alcotest.(check bool) "raises" true
          (try
             ignore (E.exec db "SELECT * FROM emp LEFT JOIN dept");
             false
           with E.Error _ -> true)) ]

let subqueries =
  [ Alcotest.test_case "scalar subquery" `Quick (fun () ->
        let db = fresh () in
        Alcotest.(check value) "max salary" (R.Int 300)
          (E.scalar db "SELECT (SELECT MAX(salary) FROM emp)"));
    Alcotest.test_case "scalar subquery in where" `Quick (fun () ->
        let db = fresh () in
        Alcotest.(check value) "top earner" (R.Text "dee")
          (E.scalar db "SELECT name FROM emp WHERE salary = (SELECT MAX(salary) FROM emp)"));
    Alcotest.test_case "empty scalar subquery is null" `Quick (fun () ->
        let db = fresh () in
        Alcotest.(check value) "null" R.Null
          (E.scalar db "SELECT (SELECT salary FROM emp WHERE id = 99)"));
    Alcotest.test_case "in (select ...)" `Quick (fun () ->
        let db = fresh () in
        Alcotest.(check int) "members of real depts" 2
          (E.int_scalar db "SELECT COUNT(*) FROM emp WHERE dept IN (SELECT did FROM dept)"));
    Alcotest.test_case "not in (select ...) with null subject" `Quick (fun () ->
        let db = fresh () in
        (* cid's NULL dept is unknown, dee's 30 is not in the list *)
        Alcotest.(check int) "not in" 1
          (E.int_scalar db
             "SELECT COUNT(*) FROM emp WHERE dept NOT IN (SELECT did FROM dept)"));
    Alcotest.test_case "exists and not exists" `Quick (fun () ->
        let db = fresh () in
        Alcotest.(check value) "exists" (R.Int 1)
          (E.scalar db "SELECT EXISTS (SELECT 1 FROM dept WHERE did = 10)");
        Alcotest.(check value) "not exists" (R.Int 1)
          (E.scalar db "SELECT NOT EXISTS (SELECT 1 FROM dept WHERE did = 99)"));
    Alcotest.test_case "subquery in insert values" `Quick (fun () ->
        let db = fresh () in
        ignore
          (E.exec db
             "INSERT INTO emp VALUES ((SELECT MAX(id) FROM emp) + 1, 'eve', 10, 50)");
        Alcotest.(check value) "id assigned" (R.Int 5)
          (E.scalar db "SELECT id FROM emp WHERE name = 'eve'"));
    Alcotest.test_case "subquery in delete" `Quick (fun () ->
        let db = fresh () in
        ignore (E.exec db "DELETE FROM emp WHERE dept IN (SELECT did FROM dept)");
        Alcotest.(check int) "remaining" 2 (E.int_scalar db "SELECT COUNT(*) FROM emp"));
    Alcotest.test_case "multi-column scalar subquery rejected" `Quick (fun () ->
        let db = fresh () in
        Alcotest.(check bool) "raises" true
          (try
             ignore (E.exec db "SELECT (SELECT id, name FROM emp)");
             false
           with E.Error _ -> true)) ]

let unions =
  [ Alcotest.test_case "union deduplicates" `Quick (fun () ->
        let db = fresh () in
        let res =
          E.exec db "SELECT dept FROM emp WHERE dept = 10 UNION SELECT did FROM dept ORDER BY 1"
        in
        Alcotest.(check (list row)) "dedup" [ [ R.Int 10 ]; [ R.Int 20 ] ] (rows_of res));
    Alcotest.test_case "union all keeps duplicates" `Quick (fun () ->
        let db = fresh () in
        Alcotest.(check int) "count" 6
          (List.length
             (E.exec db "SELECT did FROM dept UNION ALL SELECT did FROM dept UNION ALL \
                         SELECT did FROM dept")
               .E.rows));
    Alcotest.test_case "compound order by name and limit" `Quick (fun () ->
        let db = fresh () in
        let res =
          E.exec db
            "SELECT name FROM emp WHERE id <= 2 UNION SELECT dname FROM dept ORDER BY name \
             DESC LIMIT 2"
        in
        Alcotest.(check (list row)) "ordered" [ [ R.Text "ops" ]; [ R.Text "eng" ] ]
          (rows_of res));
    Alcotest.test_case "mismatched arity rejected" `Quick (fun () ->
        let db = fresh () in
        Alcotest.(check bool) "raises" true
          (try
             ignore (E.exec db "SELECT id FROM emp UNION SELECT did, dname FROM dept");
             false
           with E.Error _ -> true)) ]

let casts =
  [ Alcotest.test_case "cast to integer truncates" `Quick (fun () ->
        let db = fresh () in
        Alcotest.(check value) "int" (R.Int 3) (E.scalar db "SELECT CAST(3.9 AS INTEGER)");
        Alcotest.(check value) "text to int" (R.Int 12)
          (E.scalar db "SELECT CAST('12abc' AS INTEGER)"));
    Alcotest.test_case "cast to text renders" `Quick (fun () ->
        let db = fresh () in
        Alcotest.(check value) "text" (R.Text "42") (E.scalar db "SELECT CAST(42 AS TEXT)"));
    Alcotest.test_case "cast to real parses" `Quick (fun () ->
        let db = fresh () in
        Alcotest.(check value) "real" (R.Real 2.5) (E.scalar db "SELECT CAST('2.5' AS REAL)"));
    Alcotest.test_case "cast null stays null" `Quick (fun () ->
        let db = fresh () in
        Alcotest.(check value) "null" R.Null (E.scalar db "SELECT CAST(NULL AS INTEGER)")) ]

(* Every optimized plan ends with its delta-safety verdict; plain
   row-returning selects are never delta-safe. *)
let no_delta = "DELTA-SAFE: no (no aggregate to update incrementally)"

let explain =
  [ Alcotest.test_case "seq scan reported" `Quick (fun () ->
        let db = fresh () in
        let res = E.exec db "EXPLAIN SELECT * FROM emp" in
        Alcotest.(check (list row)) "scan"
          [ [ R.Text "SCAN emp" ]; [ R.Text no_delta ] ]
          (rows_of res));
    Alcotest.test_case "index search reported" `Quick (fun () ->
        let db = fresh () in
        ignore (E.exec db "CREATE INDEX ie ON emp (id)");
        let res = E.exec db "EXPLAIN SELECT * FROM emp WHERE id = 2" in
        Alcotest.(check (list row)) "search"
          [ [ R.Text "SEARCH emp USING INDEX ie" ]; [ R.Text no_delta ] ]
          (rows_of res));
    Alcotest.test_case "automatic hash index reported for joins" `Quick (fun () ->
        let db = fresh () in
        let res =
          E.exec db "EXPLAIN SELECT * FROM emp, dept WHERE emp.dept = dept.did ORDER BY id"
        in
        Alcotest.(check (list row)) "join plan"
          [ [ R.Text "SCAN emp" ]; [ R.Text "JOIN dept USING AUTOMATIC HASH INDEX" ];
            [ R.Text "USE TEMP B-TREE FOR ORDER BY" ]; [ R.Text no_delta ] ]
          (rows_of res));
    Alcotest.test_case "native index join reported" `Quick (fun () ->
        let db = fresh () in
        ignore (E.exec db "CREATE INDEX idd ON dept (did)");
        let res = E.exec db "EXPLAIN SELECT * FROM emp, dept WHERE emp.dept = dept.did" in
        Alcotest.(check (list row)) "join plan"
          [ [ R.Text "SCAN emp" ]; [ R.Text "SEARCH dept USING INDEX idd (join)" ];
            [ R.Text no_delta ] ]
          (rows_of res)) ]

let () =
  Alcotest.run "sql2"
    [ ("left-join", left_join);
      ("subqueries", subqueries);
      ("union", unions);
      ("cast", casts);
      ("explain", explain) ]
