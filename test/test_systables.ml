(* Virtual system-table tests: live data through plain SELECT, the
   ANALYZE ARCHIVE statement cross-checked against the Retro layer's
   own accounting, RQL retrospective meta-queries over sys_snapshots,
   and the read-only guards. *)

module R = Storage.Record
module E = Sqldb.Engine

let value = Alcotest.testable R.pp_value R.equal_value
let row = Alcotest.(list value)

let rows_of (res : E.result) = List.map Array.to_list res.E.rows

let q db sql = rows_of (E.exec db sql)

let int_of = function R.Int i -> i | v -> Alcotest.failf "expected int, got %s" (R.value_to_string v)

(* A history with three snapshots and update traffic in between. *)
let snapshot_ctx () =
  let ctx = Rql.create () in
  let e sql = ignore (E.exec ctx.Rql.data sql) in
  e "CREATE TABLE t (a INTEGER, b TEXT)";
  e "INSERT INTO t VALUES (1,'x'), (2,'y'), (3,'z')";
  ignore (Rql.declare_snapshot ctx);
  e "UPDATE t SET b = 'xx' WHERE a = 1";
  ignore (Rql.declare_snapshot ctx);
  e "INSERT INTO t VALUES (4,'w')";
  e "DELETE FROM t WHERE a = 2";
  ignore (Rql.declare_snapshot ctx);
  ctx

let metrics =
  [ Alcotest.test_case "sys_metrics returns live counter values" `Quick (fun () ->
        let db = E.create () in
        ignore (E.exec db "CREATE TABLE m (x INTEGER)");
        ignore (E.exec db "INSERT INTO m VALUES (1), (2)");
        let before =
          match q db "SELECT value FROM sys_metrics WHERE name = 'sql.statements'" with
          | [ [ v ] ] -> int_of v
          | r -> Alcotest.failf "expected one row, got %d" (List.length r)
        in
        Alcotest.(check bool) "statements counted" true (before >= 3);
        ignore (E.exec db "SELECT 1");
        let after =
          match q db "SELECT value FROM sys_metrics WHERE name = 'sql.statements'" with
          | [ [ v ] ] -> int_of v
          | _ -> Alcotest.fail "expected one row"
        in
        (* the SELECT 1 plus the first sys_metrics read happened in between *)
        Alcotest.(check bool) "value is live" true (after >= before + 2);
        Alcotest.(check (list row)) "kind column"
          [ [ R.Text "counter" ] ]
          (q db "SELECT kind FROM sys_metrics WHERE name = 'sql.statements'"));
    Alcotest.test_case "sys_histograms reports ordered quantiles" `Quick (fun () ->
        let db = E.create () in
        for i = 1 to 10 do
          ignore (E.exec db (Printf.sprintf "SELECT %d" i))
        done;
        match
          q db
            "SELECT count, p50, p95, p99, min, max FROM sys_histograms WHERE name = \
             'sql.stmt_latency'"
        with
        | [ [ c; p50; p95; p99; mn; mx ] ] ->
          let f = function
            | R.Real x -> x
            | R.Int i -> float_of_int i
            | v -> Alcotest.failf "expected number, got %s" (R.value_to_string v)
          in
          Alcotest.(check bool) "count positive" true (int_of c >= 10);
          Alcotest.(check bool) "quantiles ordered" true (f p50 <= f p95 && f p95 <= f p99);
          Alcotest.(check bool) "min <= max" true (f mn <= f mx)
        | r -> Alcotest.failf "expected one histogram row, got %d" (List.length r));
    Alcotest.test_case "sys_tables reports heap and index footprints" `Quick (fun () ->
        let db = E.create () in
        ignore (E.exec db "CREATE TABLE ft (a INTEGER, b TEXT)");
        ignore (E.exec db "CREATE INDEX ft_a ON ft (a)");
        ignore (E.exec db "INSERT INTO ft VALUES (1,'x'), (2,'y'), (3,'z')");
        Alcotest.(check (list row)) "table row"
          [ [ R.Text "table"; R.Int 3 ] ]
          (q db "SELECT kind, rows FROM sys_tables WHERE name = 'ft'");
        (match q db "SELECT rows, pages FROM sys_tables WHERE name = 'ft_a'" with
        | [ [ r; p ] ] ->
          Alcotest.(check int) "index entries" 3 (int_of r);
          Alcotest.(check bool) "index pages" true (int_of p >= 1)
        | r -> Alcotest.failf "expected index row, got %d rows" (List.length r)));
    Alcotest.test_case "sys_spans exposes the trace ring" `Quick (fun () ->
        let db = E.create () in
        Obs.Trace.clear ();
        Obs.Trace.set_enabled true;
        Fun.protect
          ~finally:(fun () -> Obs.Trace.set_enabled false)
          (fun () ->
            ignore (E.exec db "SELECT 1");
            match q db "SELECT COUNT(*) FROM sys_spans WHERE name = 'sql.stmt'" with
            | [ [ n ] ] -> Alcotest.(check bool) "stmt spans recorded" true (int_of n >= 1)
            | _ -> Alcotest.fail "expected one count row"));
    Alcotest.test_case "sys_timeseries surfaces ring samples" `Quick (fun () ->
        let db = E.create () in
        Obs.Timeseries.clear ();
        Obs.Timeseries.set_interval 1;
        Fun.protect
          ~finally:(fun () -> Obs.Timeseries.set_interval 0)
          (fun () ->
            ignore (E.exec db "SELECT 1");
            ignore (E.exec db "SELECT 2");
            match
              q db "SELECT COUNT(*) FROM sys_timeseries WHERE name = 'sql.statements'"
            with
            | [ [ n ] ] -> Alcotest.(check bool) "samples present" true (int_of n >= 2)
            | _ -> Alcotest.fail "expected one count row")) ]

let snapshots =
  [ Alcotest.test_case "sys_snapshots matches the Retro accounting" `Quick (fun () ->
        let ctx = snapshot_ctx () in
        let db = ctx.Rql.data in
        let retro = Sqldb.Db.retro_exn db in
        (match q db "SELECT COUNT(*) FROM sys_snapshots" with
        | [ [ n ] ] ->
          Alcotest.(check int) "one row per snapshot" (Retro.snapshot_count retro) (int_of n)
        | _ -> Alcotest.fail "expected one count row");
        (* every mapping belongs to exactly one snapshot's delta, and
           every archived pre-state is exactly one Pagelog page *)
        (match
           q db "SELECT SUM(delta_entries), SUM(delta_bytes), SUM(delta_pages) FROM sys_snapshots"
         with
        | [ [ entries; bytes; pages ] ] ->
          Alcotest.(check int) "sum(delta_entries) = maplog length"
            (Retro.maplog_length retro) (int_of entries);
          Alcotest.(check int) "sum(delta_bytes) = pagelog bytes"
            (Retro.pagelog_size_bytes retro) (int_of bytes);
          Alcotest.(check bool) "delta_pages <= delta_entries" true
            (int_of pages <= int_of entries)
        | _ -> Alcotest.fail "expected one sum row");
        (* after an AS OF read, that snapshot's SPT is flagged current *)
        ignore (E.exec db "SELECT AS OF 2 COUNT(*) FROM t");
        Alcotest.(check (list row)) "spt_cached flags snapshot 2"
          [ [ R.Int 2 ] ]
          (q db "SELECT snap_id FROM sys_snapshots WHERE spt_cached = 1"));
    Alcotest.test_case "ANALYZE ARCHIVE agrees with the layer it reports on" `Quick (fun () ->
        let ctx = snapshot_ctx () in
        let db = ctx.Rql.data in
        let retro = Sqldb.Db.retro_exn db in
        let a = Retro.analyze retro in
        Alcotest.(check int) "snapshot count"
          (Retro.snapshot_count retro)
          (Array.length a.Retro.an_snapshots);
        Alcotest.(check int) "maplog entries" (Retro.maplog_length retro) a.Retro.an_maplog_entries;
        Alcotest.(check int) "pagelog bytes"
          (Retro.pagelog_size_bytes retro) a.Retro.an_pagelog_bytes;
        let sum f = Array.fold_left (fun acc si -> acc + f si) 0 a.Retro.an_snapshots in
        Alcotest.(check int) "per-snapshot deltas partition the maplog"
          a.Retro.an_maplog_entries
          (sum (fun si -> si.Retro.si_delta_entries));
        Alcotest.(check int) "per-snapshot bytes partition the pagelog"
          a.Retro.an_pagelog_bytes
          (sum (fun si -> si.Retro.si_delta_bytes));
        Alcotest.(check bool) "chain stats consistent" true
          (a.Retro.an_chain_max >= 1
          && a.Retro.an_chain_mean >= 1.
          && float_of_int a.Retro.an_chain_max >= a.Retro.an_chain_mean);
        (* the SQL statement renders the same analysis *)
        let res = E.exec db "ANALYZE ARCHIVE" in
        Alcotest.(check (array string)) "columns" [| "analyze" |] res.E.columns;
        (match res.E.rows with
        | first :: _ ->
          Alcotest.(check row) "headline row"
            [ R.Text (Printf.sprintf "snapshots: %d" (Retro.snapshot_count retro)) ]
            (Array.to_list first)
        | [] -> Alcotest.fail "ANALYZE ARCHIVE returned no rows"));
    Alcotest.test_case "ANALYZE ARCHIVE requires a snapshot system" `Quick (fun () ->
        let db = E.create ~snapshots:false () in
        Alcotest.(check bool) "raises" true
          (try
             ignore (E.exec db "ANALYZE ARCHIVE");
             false
           with E.Error _ -> true));
    Alcotest.test_case "sys_cache reports the snapshot cache" `Quick (fun () ->
        let ctx = snapshot_ctx () in
        let db = ctx.Rql.data in
        ignore (E.exec db "SELECT AS OF 1 COUNT(*) FROM t");
        ignore (E.exec db "SELECT AS OF 1 COUNT(*) FROM t");
        match q db "SELECT name, capacity, hits, misses FROM sys_cache" with
        | [ [ name; cap; hits; misses ] ] ->
          Alcotest.(check value) "instance name" (R.Text "retro.snap_cache") name;
          Alcotest.(check bool) "capacity positive" true (int_of cap > 0);
          Alcotest.(check bool) "traffic recorded" true (int_of hits + int_of misses > 0)
        | r -> Alcotest.failf "expected one cache row, got %d" (List.length r)) ]

let rql_udfs =
  [ Alcotest.test_case "AggregateDataInVariable over sys_snapshots" `Quick (fun () ->
        let ctx = snapshot_ctx () in
        (* retrospective meta-query: per snapshot, read that snapshot's
           own delta size from the introspection table, then fold *)
        ignore
          (Rql.aggregate_data_in_variable ctx ~qs:"SELECT snap_id FROM SnapIds"
             ~qq:"SELECT delta_pages FROM sys_snapshots WHERE snap_id = current_snapshot()"
             ~table:"V" ~fn:"sum");
        let direct =
          match q ctx.Rql.data "SELECT SUM(delta_pages) FROM sys_snapshots" with
          | [ [ v ] ] -> int_of v
          | _ -> Alcotest.fail "expected one sum row"
        in
        Alcotest.(check bool) "archive saw traffic" true (direct > 0);
        Alcotest.(check (list row)) "UDF total = direct total"
          [ [ R.Int direct ] ]
          (q ctx.Rql.meta "SELECT * FROM V")) ]

let guards =
  [ Alcotest.test_case "system tables reject DML" `Quick (fun () ->
        let db = E.create () in
        let rejects sql =
          Alcotest.(check bool) sql true
            (try
               ignore (E.exec db sql);
               false
             with E.Error _ -> true)
        in
        rejects "INSERT INTO sys_metrics VALUES ('x', 'counter', 1)";
        rejects "DELETE FROM sys_metrics";
        rejects "UPDATE sys_metrics SET value = 0";
        rejects "CREATE TABLE sys_custom (a INTEGER)";
        rejects "CREATE INDEX sm ON sys_metrics (name)");
    Alcotest.test_case "sys_ names are listed for discovery" `Quick (fun () ->
        let names = Sqldb.Systables.names () in
        List.iter
          (fun n -> Alcotest.(check bool) n true (List.mem n names))
          [ "sys_metrics"; "sys_histograms"; "sys_spans"; "sys_snapshots"; "sys_cache";
            "sys_tables"; "sys_timeseries" ]) ]

let () =
  Alcotest.run "systables"
    [ ("metrics", metrics); ("snapshots", snapshots); ("rql-udfs", rql_udfs);
      ("guards", guards) ]
