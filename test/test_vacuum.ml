(* Archive-lifecycle tests: VACUUM SNAPSHOTS (dry-run/live parity, AS OF
   byte-identity across the UW matrix, damaged-prefix reclaim),
   CHECKPOINT with bounded recovery replay, the auto-checkpoint trigger,
   maintenance exclusion, and bounded retries for transient read
   faults. *)

module R = Storage.Record
module E = Sqldb.Engine
module F = Storage.Fault
module S = Storage.Stats

let cget = Obs.Scope.get

let e db sql = ignore (E.exec db sql)

let count db sql = E.int_scalar db sql

let retro_of db = Option.get db.Sqldb.Db.retro

let fresh name =
  let p = Filename.concat (Filename.get_temp_dir_name ()) name in
  List.iter
    (fun q -> if Sys.file_exists q then Sys.remove q)
    [ p; p ^ ".swap"; p ^ ".ckpt"; p ^ ".ckpt.new"; p ^ ".ckpt.tmp" ];
  p

let has_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Sorted textual contents of [t], optionally AS OF a snapshot. *)
let contents db ?as_of t =
  let sql =
    match as_of with
    | None -> Printf.sprintf "SELECT * FROM %s" t
    | Some sid -> Printf.sprintf "SELECT AS OF %d * FROM %s" sid t
  in
  List.sort compare
    (List.map
       (fun row -> String.concat "," (Array.to_list (Array.map R.value_to_string row)))
       (E.exec db sql).E.rows)

(* A small update-heavy history: each round overwrites one row, inserts
   another and declares a snapshot, so every snapshot has its own
   archived delta. *)
let build_history ?(rounds = 5) () =
  let db = E.create () in
  e db "CREATE TABLE t (id INTEGER, v INTEGER)";
  e db "INSERT INTO t VALUES (1, 0), (2, 0), (3, 0), (4, 0)";
  for i = 1 to rounds do
    e db "BEGIN";
    e db (Printf.sprintf "UPDATE t SET v = %d WHERE id = %d" i (1 + (i mod 4)));
    e db (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" (10 + i) i);
    e db "COMMIT WITH SNAPSHOT"
  done;
  db

let round_sql db i =
  e db "BEGIN";
  e db (Printf.sprintf "UPDATE t SET v = %d WHERE id = %d" i (1 + (i mod 2)));
  e db "COMMIT WITH SNAPSHOT"

let dry_run_totals (res : E.result) =
  List.fold_left
    (fun (blocks, bytes) row ->
      match row with
      | [| _; R.Int b; R.Int by |] -> (blocks + b, bytes + by)
      | _ -> Alcotest.fail "unexpected dry-run row shape")
    (0, 0) res.E.rows

(* --- vacuum -------------------------------------------------------------- *)

let vacuum_tests =
  [ Alcotest.test_case "dry run is exact and mutates nothing" `Quick (fun () ->
        let db = build_history ~rounds:6 () in
        let retro = retro_of db in
        let blocks0 = Retro.Pagelog.length retro.Retro.pagelog in
        let vac0 = cget S.c_snapshots_vacuumed in
        let rec0 = cget S.c_blocks_reclaimed in
        let dry = E.exec db "VACUUM SNAPSHOTS KEEPING LAST 2 DRY RUN" in
        Alcotest.(check (array string))
          "columns"
          [| "snapshot"; "blocks_reclaimable"; "bytes_reclaimable" |]
          dry.E.columns;
        Alcotest.(check int) "one row per candidate" 4 (List.length dry.E.rows);
        let dry_blocks, dry_bytes = dry_run_totals dry in
        Alcotest.(check bool) "something to reclaim" true (dry_blocks > 0);
        (* the dry run changed nothing, observably *)
        Alcotest.(check int) "pagelog unchanged" blocks0
          (Retro.Pagelog.length retro.Retro.pagelog);
        Alcotest.(check int) "first_live unchanged" 1 (Retro.first_live retro);
        Alcotest.(check int) "snapshot count unchanged" 6 (Retro.snapshot_count retro);
        Alcotest.(check int) "no vacuum counted" vac0 (cget S.c_snapshots_vacuumed);
        Alcotest.(check int) "no reclaim counted" rec0 (cget S.c_blocks_reclaimed);
        (* the live run reclaims exactly the estimate *)
        (match (E.exec db "VACUUM SNAPSHOTS KEEPING LAST 2").E.rows with
        | [ [| R.Int snaps; R.Int blocks; R.Int bytes |] ] ->
          Alcotest.(check int) "snapshots dropped" 4 snaps;
          Alcotest.(check int) "block parity" dry_blocks blocks;
          Alcotest.(check int) "byte parity" dry_bytes bytes
        | _ -> Alcotest.fail "unexpected live-run result shape");
        Alcotest.(check int) "device shrank by the estimate" (blocks0 - dry_blocks)
          (Retro.Pagelog.length retro.Retro.pagelog);
        Alcotest.(check int) "vacuumed counted" (vac0 + 4) (cget S.c_snapshots_vacuumed);
        Alcotest.(check int) "reclaim counted" (rec0 + dry_blocks)
          (cget S.c_blocks_reclaimed));
    Alcotest.test_case "ids never renumber; retentions are idempotent" `Quick (fun () ->
        let db = build_history ~rounds:4 () in
        let retro = retro_of db in
        let pre = contents db ~as_of:4 "t" in
        ignore (E.exec db "VACUUM SNAPSHOTS OLDER THAN 3");
        Alcotest.(check int) "first_live" 3 (Retro.first_live retro);
        Alcotest.(check int) "ids preserved" 4 (Retro.snapshot_count retro);
        Alcotest.(check int) "live count" 2 (Retro.live_snapshot_count retro);
        Alcotest.(check bool) "AS OF a vacuumed id is refused" true
          (try
             ignore (E.exec db "SELECT AS OF 2 * FROM t");
             false
           with E.Error m -> has_sub m "vacuumed");
        Alcotest.(check (list string)) "survivor reads identically" pre
          (contents db ~as_of:4 "t");
        (* the same retention again is a clean no-op *)
        (match (E.exec db "VACUUM SNAPSHOTS OLDER THAN 3").E.rows with
        | [ [| R.Int 0; R.Int 0; R.Int 0 |] ] -> ()
        | _ -> Alcotest.fail "repeat vacuum was not a no-op");
        (* retention beyond the newest snapshot is an error *)
        Alcotest.(check bool) "OLDER THAN past the end is refused" true
          (try
             ignore (E.exec db "VACUUM SNAPSHOTS OLDER THAN 99");
             false
           with E.Error m -> has_sub m "no such snapshot");
        (* bare VACUUM SNAPSHOTS keeps only the newest *)
        ignore (E.exec db "VACUUM SNAPSHOTS");
        Alcotest.(check int) "only the newest is live" 4 (Retro.first_live retro);
        Alcotest.(check int) "vacuumed rows in sys_snapshots" 3
          (count db "SELECT COUNT(*) FROM sys_snapshots WHERE status = 'vacuumed'");
        Alcotest.(check int) "retained rows in sys_snapshots" 1
          (count db "SELECT COUNT(*) FROM sys_snapshots WHERE status = 'retained'");
        Alcotest.(check int) "sys_archive live count" 1
          (count db "SELECT snapshots_live FROM sys_archive");
        Alcotest.(check int) "sys_archive first_live" 4
          (count db "SELECT first_live FROM sys_archive"));
    Alcotest.test_case "retention must be a positive integer constant" `Quick (fun () ->
        let db = build_history ~rounds:2 () in
        List.iter
          (fun sql ->
            Alcotest.(check bool) (sql ^ " rejected") true
              (try
                 ignore (E.exec db sql);
                 false
               with E.Error m -> has_sub m "positive integer"))
          [ "VACUUM SNAPSHOTS OLDER THAN 0";
            "VACUUM SNAPSHOTS KEEPING LAST 'many'";
            "VACUUM SNAPSHOTS OLDER THAN 1 + 1" ]);
    Alcotest.test_case "AS OF byte-identity across the UW matrix" `Quick (fun () ->
        List.iter
          (fun (name, uw) ->
            let ctx, _st, sids =
              Tpch.Workload.build_history ~sf:0.002 ~uw ~snapshots:5 ()
            in
            let db = ctx.Rql.data in
            Alcotest.(check (list int)) (name ^ " ids") [ 1; 2; 3; 4; 5 ] sids;
            let keep = [ 4; 5 ] in
            let pre =
              List.map (fun sid -> (sid, contents db ~as_of:sid "orders")) keep
            in
            let dry_blocks, _ =
              dry_run_totals (E.exec db "VACUUM SNAPSHOTS KEEPING LAST 2 DRY RUN")
            in
            (match (E.exec db "VACUUM SNAPSHOTS KEEPING LAST 2").E.rows with
            | [ [| R.Int 3; R.Int blocks; _ |] ] ->
              Alcotest.(check int) (name ^ " parity") dry_blocks blocks
            | _ -> Alcotest.fail (name ^ ": unexpected vacuum result"));
            List.iter
              (fun (sid, want) ->
                Alcotest.(check (list string))
                  (Printf.sprintf "%s orders as of %d" name sid)
                  want
                  (contents db ~as_of:sid "orders"))
              pre;
            Alcotest.(check bool) (name ^ " vacuumed id refused") true
              (try
                 ignore (E.exec db "SELECT AS OF 2 COUNT(*) FROM orders");
                 false
               with E.Error _ -> true))
          [ ("uw30", Tpch.Workload.uw30); ("uw15", Tpch.Workload.uw15) ]);
    Alcotest.test_case "vacuuming a damaged prefix reclaims it and scrubs clean" `Quick
      (fun () ->
        let db = build_history ~rounds:4 () in
        let retro = retro_of db in
        Retro.corrupt_archive_block retro 0 ~bit:5;
        Alcotest.(check bool) "scrub pins the damage on snapshot 1" true
          (List.mem_assoc 1 (Retro.scrub retro));
        Alcotest.(check bool) "integrity reports it" true
          (Sqldb.Integrity.check db <> []);
        (* the damaged snapshot's blocks still count as reclaimable *)
        let dry_blocks, _ =
          dry_run_totals (E.exec db "VACUUM SNAPSHOTS OLDER THAN 2 DRY RUN")
        in
        Alcotest.(check bool) "damaged delta reclaimable" true (dry_blocks > 0);
        (match (E.exec db "VACUUM SNAPSHOTS OLDER THAN 2").E.rows with
        | [ [| R.Int 1; R.Int blocks; _ |] ] ->
          Alcotest.(check int) "reclaimed the estimate" dry_blocks blocks
        | _ -> Alcotest.fail "unexpected vacuum result");
        Alcotest.(check (list (pair int int))) "scrub clean after the vacuum" []
          (Retro.scrub retro);
        Alcotest.(check bool) "damaged flag pruned" false (Retro.is_damaged retro 1);
        (match (E.exec db "PRAGMA integrity_check").E.rows with
        | [ [| R.Text "ok" |] ] -> ()
        | _ -> Alcotest.fail "integrity_check not clean after vacuum");
        Alcotest.(check (list int)) "device checksums clean" []
          (Retro.verify_archive retro)) ]

(* --- checkpoint ---------------------------------------------------------- *)

let checkpoint_tests =
  [ Alcotest.test_case "recovery replays only the post-checkpoint suffix" `Quick
      (fun () ->
        let path = fresh "vacuum_ckpt.wal" in
        let db, r = Sqldb.Db.open_wal ~path () in
        Alcotest.(check bool) "fresh database" true (r = None);
        e db "CREATE TABLE t (id INTEGER, v INTEGER)";
        e db "INSERT INTO t VALUES (1, 0), (2, 0)";
        for i = 1 to 4 do
          round_sql db i
        done;
        (match (E.exec db "CHECKPOINT").E.rows with
        | [ [| R.Int 1; R.Int dropped |] ] ->
          Alcotest.(check bool) "bytes were truncated" true (dropped > 0)
        | _ -> Alcotest.fail "unexpected CHECKPOINT result");
        for i = 5 to 6 do
          round_sql db i
        done;
        let sids = [ 1; 2; 3; 4; 5; 6 ] in
        let pre = List.map (fun sid -> (sid, contents db ~as_of:sid "t")) sids in
        let final = contents db "t" in
        Sqldb.Db.close_wal db;
        (* first recovery: image + two-commit suffix *)
        let db2, r2 = Sqldb.Db.open_wal ~path () in
        let rep = (Option.get r2).Sqldb.Db.rec_report in
        Alcotest.(check (option int)) "checkpoint frame seen" (Some 1)
          rep.Storage.Wal.rep_checkpoint;
        Alcotest.(check int) "only the suffix replayed" 2 rep.Storage.Wal.rep_commits;
        Alcotest.(check int) "all snapshots present" 6
          (Retro.snapshot_count (retro_of db2));
        Alcotest.(check (list string)) "current state identical" final
          (contents db2 "t");
        List.iter
          (fun (sid, want) ->
            Alcotest.(check (list string))
              (Printf.sprintf "as of %d survives recovery" sid)
              want
              (contents db2 ~as_of:sid "t"))
          pre;
        (* vacuum commits through a checkpoint; a second recovery must
           restore the post-vacuum world with ids preserved *)
        ignore (E.exec db2 "VACUUM SNAPSHOTS KEEPING LAST 2");
        Sqldb.Db.close_wal db2;
        let db3, r3 = Sqldb.Db.open_wal ~path () in
        let rep3 = (Option.get r3).Sqldb.Db.rec_report in
        Alcotest.(check (option int)) "vacuum's checkpoint frame" (Some 2)
          rep3.Storage.Wal.rep_checkpoint;
        Alcotest.(check int) "nothing to replay" 0 rep3.Storage.Wal.rep_commits;
        let retro3 = retro_of db3 in
        Alcotest.(check int) "ids preserved across vacuum+recovery" 6
          (Retro.snapshot_count retro3);
        Alcotest.(check int) "prefix stays vacuumed" 5 (Retro.first_live retro3);
        List.iter
          (fun (sid, want) ->
            if sid >= 5 then
              Alcotest.(check (list string))
                (Printf.sprintf "as of %d after vacuum+recovery" sid)
                want
                (contents db3 ~as_of:sid "t"))
          pre;
        Alcotest.(check bool) "vacuumed id refused after recovery" true
          (try
             ignore (E.exec db3 "SELECT AS OF 4 * FROM t");
             false
           with E.Error m -> has_sub m "vacuumed");
        Sqldb.Db.close_wal db3);
    Alcotest.test_case "auto-checkpoint fires past the threshold" `Quick (fun () ->
        let path = fresh "vacuum_auto.wal" in
        let db, _ = Sqldb.Db.open_wal ~path () in
        e db "CREATE TABLE t (a INTEGER)";
        Alcotest.(check int) "threshold defaults to off" 0
          (count db "PRAGMA checkpoint_threshold");
        e db "PRAGMA checkpoint_threshold=1";
        Alcotest.(check int) "threshold readable" 1
          (count db "PRAGMA checkpoint_threshold");
        let ck0 = cget S.c_checkpoints in
        let tr0 = cget S.c_wal_truncated_bytes in
        e db "BEGIN";
        e db "INSERT INTO t VALUES (1)";
        e db "COMMIT";
        Alcotest.(check int) "commit triggered a checkpoint" (ck0 + 1)
          (cget S.c_checkpoints);
        Alcotest.(check bool) "truncated bytes counted" true
          (cget S.c_wal_truncated_bytes > tr0);
        let s = Option.get (Sqldb.Db.wal_status db) in
        Alcotest.(check int) "log reset behind the checkpoint" 0
          s.Storage.Wal.st_since_checkpoint;
        Alcotest.(check int) "row survived" 1 (count db "SELECT COUNT(*) FROM t");
        Sqldb.Db.close_wal db);
    Alcotest.test_case "CHECKPOINT requires a WAL and no open transaction" `Quick
      (fun () ->
        let db = build_history ~rounds:1 () in
        Alcotest.(check bool) "no WAL refused" true
          (try
             ignore (E.exec db "CHECKPOINT");
             false
           with E.Error m -> has_sub m "write-ahead log");
        let path = fresh "vacuum_txn.wal" in
        let db2, _ = Sqldb.Db.open_wal ~path () in
        e db2 "CREATE TABLE t (a INTEGER)";
        e db2 "BEGIN";
        e db2 "INSERT INTO t VALUES (1)";
        Alcotest.(check bool) "inside a transaction refused" true
          (try
             ignore (E.exec db2 "CHECKPOINT");
             false
           with E.Error m -> has_sub m "transaction");
        e db2 "COMMIT";
        (match (E.exec db2 "CHECKPOINT").E.rows with
        | [ [| R.Int 1; _ |] ] -> ()
        | _ -> Alcotest.fail "checkpoint after COMMIT failed");
        Sqldb.Db.close_wal db2) ]

(* --- concurrency --------------------------------------------------------- *)

let concurrency_tests =
  [ Alcotest.test_case "vacuum waits for readers; second maintenance refused" `Quick
      (fun () ->
        let db = build_history ~rounds:4 () in
        let pager = db.Sqldb.Db.pager in
        let reader_released = ref 0. in
        let reader =
          Domain.spawn (fun () ->
              Storage.Pager.with_read_lock pager (fun () ->
                  Unix.sleepf 0.08;
                  reader_released := Unix.gettimeofday ()))
        in
        Unix.sleepf 0.02;
        (* while the first vacuum waits behind the reader it owns the
           maintenance flag, so a concurrent vacuum must error — not
           block, not interleave *)
        let second_refused = ref false in
        let second =
          Domain.spawn (fun () ->
              Unix.sleepf 0.02;
              try ignore (E.exec db "VACUUM SNAPSHOTS KEEPING LAST 2")
              with E.Error m -> second_refused := has_sub m "maintenance")
        in
        ignore (E.exec db "VACUUM SNAPSHOTS KEEPING LAST 3");
        let vacuumed_at = Unix.gettimeofday () in
        Domain.join reader;
        Domain.join second;
        Alcotest.(check bool) "vacuum blocked behind the reader" true
          (vacuumed_at >= !reader_released);
        Alcotest.(check bool) "concurrent maintenance refused" true !second_refused;
        Alcotest.(check int) "first vacuum won" 2 (Retro.first_live (retro_of db))) ]

(* --- transient read faults ----------------------------------------------- *)

let retry_tests =
  [ Alcotest.test_case "transient read fault heals within the retry budget" `Quick
      (fun () ->
        let db = build_history ~rounds:2 () in
        let retro = retro_of db in
        let f = F.create ~seed:7 () in
        Retro.set_archive_fault retro (Some f);
        Retro.clear_cache retro;
        (* once-armed: the first probe consumes the fault, a retry
           succeeds, and the snapshot is never marked damaged *)
        F.arm_read_error f ~once:true ~device:Retro.archive_device ~index:0;
        let r0 = cget S.c_read_retries in
        Alcotest.(check int) "read healed by retry" 2
          (count db "SELECT AS OF 1 SUM(v) FROM t");
        Alcotest.(check bool) "retry counted" true (cget S.c_read_retries > r0);
        Alcotest.(check bool) "not marked damaged" false (Retro.is_damaged retro 1);
        (* persistent: the bounded budget exhausts and the read fails *)
        F.arm_read_error f ~device:Retro.archive_device ~index:0;
        Retro.clear_cache retro;
        Alcotest.(check bool) "persistent fault still fails" true
          (try
             ignore (E.exec db "SELECT AS OF 1 * FROM t");
             false
           with E.Error _ -> true);
        F.disarm_read_error f ~device:Retro.archive_device ~index:0;
        Retro.clear_cache retro;
        Alcotest.(check int) "reads recover once disarmed" 2
          (count db "SELECT AS OF 1 SUM(v) FROM t")) ]

let () =
  Alcotest.run "vacuum"
    [ ("vacuum", vacuum_tests);
      ("checkpoint", checkpoint_tests);
      ("concurrency", concurrency_tests);
      ("read-retries", retry_tests) ]
