(* Durability tests: checksummed block device, WAL append/recover
   round-trips, torn and bit-flipped tails, deterministic fault
   injection, group commit, transaction failure paths, and corruption
   scoped to the snapshots that reference it. *)

module R = Storage.Record
module E = Sqldb.Engine
module W = Storage.Wal
module F = Storage.Fault
module S = Storage.Stats

let cget = Obs.Scope.get

let fresh name =
  let p = Filename.concat (Filename.get_temp_dir_name ()) name in
  if Sys.file_exists p then Sys.remove p;
  p

let e db sql = ignore (E.exec db sql)

let count db sql = E.int_scalar db sql

let check_clean name db = Alcotest.(check (list string)) name [] (Sqldb.Integrity.check db)

let wal_of db = Option.get (Sqldb.Db.wal db)

let retro_of db = Option.get db.Sqldb.Db.retro

(* --- the simulated block device ------------------------------------------ *)

let disk_tests =
  [ Alcotest.test_case "read returns a defensive copy" `Quick (fun () ->
        let d = Storage.Disk.create () in
        let b = Bytes.make Storage.Page.size 'a' in
        let i = Storage.Disk.append d b in
        (* mutating the source after append must not reach the device *)
        Bytes.set b 0 'z';
        let r1 = Storage.Disk.read d i in
        Alcotest.(check char) "append copied" 'a' (Bytes.get r1 0);
        (* mutating a read buffer must not reach the device either *)
        Bytes.set r1 0 'q';
        let r2 = Storage.Disk.read d i in
        Alcotest.(check char) "read copied" 'a' (Bytes.get r2 0);
        Alcotest.(check (list int)) "clean" [] (Storage.Disk.verify_all d));
    Alcotest.test_case "bit flip detected by block checksum" `Quick (fun () ->
        let d = Storage.Disk.create ~name:"dev" () in
        let i0 = Storage.Disk.append d (Bytes.make Storage.Page.size 'x') in
        let i1 = Storage.Disk.append d (Bytes.make Storage.Page.size 'y') in
        Storage.Disk.corrupt_block d i0 ~bit:3;
        Alcotest.(check (list int)) "scrub finds it" [ i0 ] (Storage.Disk.verify_all d);
        Alcotest.(check bool) "read raises" true
          (try
             ignore (Storage.Disk.read d i0);
             false
           with Storage.Disk.Corruption { device; block; _ } ->
             device = "dev" && block = i0);
        (* the neighbouring block is unaffected *)
        Alcotest.(check char) "other block fine" 'y' (Bytes.get (Storage.Disk.read d i1) 0));
    Alcotest.test_case "armed read error fails exactly the armed block" `Quick (fun () ->
        let d = Storage.Disk.create ~name:"dev" () in
        let i0 = Storage.Disk.append d (Bytes.make Storage.Page.size 'x') in
        let i1 = Storage.Disk.append d (Bytes.make Storage.Page.size 'y') in
        let f = F.create ~seed:1 () in
        F.arm_read_error f ~device:"dev" ~index:i0;
        Storage.Disk.set_fault d (Some f);
        Alcotest.(check bool) "armed block fails" true
          (try
             ignore (Storage.Disk.read d i0);
             false
           with Storage.Disk.Read_error { block; _ } -> block = i0);
        Alcotest.(check char) "other block fine" 'y' (Bytes.get (Storage.Disk.read d i1) 0);
        Storage.Disk.set_fault d None;
        Alcotest.(check char) "disarmed" 'x' (Bytes.get (Storage.Disk.read d i0) 0)) ]

(* --- WAL round-trips ------------------------------------------------------ *)

let build_wal_db path =
  let db, rec_ = Sqldb.Db.open_wal ~path () in
  Alcotest.(check bool) "fresh open reports no recovery" true (rec_ = None);
  e db "CREATE TABLE t (a INTEGER)";
  e db "BEGIN";
  e db "INSERT INTO t VALUES (1)";
  e db "COMMIT WITH SNAPSHOT";
  e db "BEGIN";
  e db "INSERT INTO t VALUES (2)";
  e db "UPDATE t SET a = a + 10 WHERE a = 1";
  e db "COMMIT WITH SNAPSHOT";
  e db "INSERT INTO t VALUES (3)";
  db

let wal_tests =
  [ Alcotest.test_case "close and reopen reproduces state and history" `Quick (fun () ->
        let path = fresh "rql_wal_rt.wal" in
        let db = build_wal_db path in
        Sqldb.Db.close_wal db;
        let db2, rec_ = Sqldb.Db.open_wal ~path () in
        let r = Option.get rec_ in
        Alcotest.(check bool) "clean log" false
          (r.Sqldb.Db.rec_report.W.rep_torn || r.Sqldb.Db.rec_report.W.rep_corrupt);
        Alcotest.(check int) "snapshots recovered" 2 r.Sqldb.Db.rec_snapshots;
        Alcotest.(check (list int)) "none damaged" [] r.Sqldb.Db.rec_damaged;
        Alcotest.(check int) "rows" 3 (count db2 "SELECT COUNT(*) FROM t");
        Alcotest.(check int) "as of 1" 1 (count db2 "SELECT AS OF 1 COUNT(*) FROM t");
        Alcotest.(check int) "as of 1 value" 1 (count db2 "SELECT AS OF 1 SUM(a) FROM t");
        Alcotest.(check int) "as of 2 value" 13 (count db2 "SELECT AS OF 2 SUM(a) FROM t");
        check_clean "recovered integrity" db2;
        (* new work stacks on the recovered history *)
        e db2 "BEGIN";
        e db2 "INSERT INTO t VALUES (4)";
        let res = E.exec db2 "COMMIT WITH SNAPSHOT" in
        Alcotest.(check (option int)) "ids continue" (Some 3) res.E.snapshot;
        Alcotest.(check int) "as of 3" 4 (count db2 "SELECT AS OF 3 COUNT(*) FROM t");
        Sqldb.Db.close_wal db2;
        Sys.remove path);
    Alcotest.test_case "recovery is idempotent" `Quick (fun () ->
        let path = fresh "rql_wal_idem.wal" in
        let db = build_wal_db path in
        Sqldb.Db.close_wal db;
        let db2, _ = Sqldb.Db.open_wal ~path () in
        Sqldb.Db.close_wal db2;
        let db3, rec_ = Sqldb.Db.open_wal ~path () in
        Alcotest.(check bool) "still a recovery" true (rec_ <> None);
        Alcotest.(check int) "rows stable" 3 (count db3 "SELECT COUNT(*) FROM t");
        Alcotest.(check int) "snapshots stable" 2 (Retro.snapshot_count (retro_of db3));
        check_clean "still clean" db3;
        Sqldb.Db.close_wal db3;
        Sys.remove path);
    Alcotest.test_case "torn tail truncated to the last complete commit" `Quick (fun () ->
        let path = fresh "rql_wal_torn.wal" in
        let db, _ = Sqldb.Db.open_wal ~path () in
        e db "CREATE TABLE t (a INTEGER)";
        e db "INSERT INTO t VALUES (1)";
        e db "INSERT INTO t VALUES (2)";
        let f = F.create ~seed:99 () in
        (* op 1 = the commit's append (buffered); op 2 = the flush —
           crash there so a seeded strict prefix of the frame lands *)
        F.arm_crash f ~after_ops:2 ~torn:true;
        W.set_fault (wal_of db) (Some f);
        Alcotest.(check bool) "workload crashes" true
          (try
             e db "INSERT INTO t VALUES (3)";
             false
           with F.Crash -> true);
        let before = cget S.c_torn_tail_discards in
        let db2, rec_ = Sqldb.Db.open_wal ~path () in
        let r = (Option.get rec_).Sqldb.Db.rec_report in
        Alcotest.(check bool) "torn iff trailing bytes" r.W.rep_torn
          (r.W.rep_total_bytes > r.W.rep_valid_bytes);
        Alcotest.(check int) "discard counted" (if r.W.rep_torn then before + 1 else before)
          (cget S.c_torn_tail_discards);
        Alcotest.(check int) "lost commit rolled away" 2 (count db2 "SELECT COUNT(*) FROM t");
        check_clean "integrity after torn recovery" db2;
        (* the truncated log accepts appends from the commit boundary *)
        e db2 "INSERT INTO t VALUES (30)";
        Sqldb.Db.close_wal db2;
        let db3, _ = Sqldb.Db.open_wal ~path () in
        Alcotest.(check int) "append after truncation durable" 3
          (count db3 "SELECT COUNT(*) FROM t");
        Sqldb.Db.close_wal db3;
        Sys.remove path);
    Alcotest.test_case "bit-flipped log truncated at the damaged frame" `Quick (fun () ->
        let path = fresh "rql_wal_flip.wal" in
        let db = build_wal_db path in
        Sqldb.Db.close_wal db;
        let f = F.create ~seed:5 () in
        Alcotest.(check bool) "flip landed" true
          (F.flip_bit_in_file f ~path ~min_off:12 <> None);
        let before = cget S.c_torn_tail_discards in
        let db2, rec_ = Sqldb.Db.open_wal ~path () in
        let r = (Option.get rec_).Sqldb.Db.rec_report in
        Alcotest.(check bool) "damage detected" true (r.W.rep_torn || r.W.rep_corrupt);
        Alcotest.(check int) "discard counted" (before + 1) (cget S.c_torn_tail_discards);
        check_clean "valid prefix is consistent" db2;
        (* the database still accepts new work *)
        e db2 "BEGIN";
        e db2 "CREATE TABLE post (x INTEGER)";
        e db2 "INSERT INTO post VALUES (7)";
        let res = E.exec db2 "COMMIT WITH SNAPSHOT" in
        let sid = Option.get res.E.snapshot in
        Alcotest.(check int) "new snapshot readable" 7
          (count db2 (Printf.sprintf "SELECT AS OF %d SUM(x) FROM post" sid));
        Sqldb.Db.close_wal db2;
        Sys.remove path);
    Alcotest.test_case "non-WAL file rejected with a typed error" `Quick (fun () ->
        let path = fresh "rql_wal_garbage.wal" in
        let oc = open_out_bin path in
        output_string oc "certainly not a write-ahead log";
        close_out oc;
        Alcotest.(check bool) "raises Wal.Error" true
          (try
             ignore (Sqldb.Db.open_wal ~path ());
             false
           with W.Error _ -> true);
        Sys.remove path) ]

(* --- group commit --------------------------------------------------------- *)

let group_commit_tests =
  [ Alcotest.test_case "batches fsyncs and loses the tail coherently" `Quick (fun () ->
        let path = fresh "rql_wal_gc.wal" in
        let db, _ = Sqldb.Db.open_wal ~group_commit:3 ~path () in
        e db "CREATE TABLE t (a INTEGER)";
        for i = 1 to 6 do
          e db (Printf.sprintf "INSERT INTO t VALUES (%d)" i)
        done;
        (* 8 durability barriers (bootstrap, DDL, 6 inserts) at one
           fsync per 3 barriers: flushed after barrier 3 and 6; inserts
           5 and 6 still pending in memory *)
        let st = W.status (wal_of db) in
        Alcotest.(check int) "fsyncs batched" 2 st.W.st_fsyncs;
        Alcotest.(check bool) "tail pending" true (st.W.st_pending_bytes > 0);
        (* recover from the file as-is: the unflushed tail is lost as a
           unit — exactly the commits after the last batch boundary *)
        let db2, rec_ = Sqldb.Db.open_wal ~path:(st.W.st_path) () in
        Alcotest.(check bool) "recovered" true (rec_ <> None);
        Alcotest.(check int) "unflushed tail lost together" 4
          (count db2 "SELECT COUNT(*) FROM t");
        check_clean "consistent at the batch boundary" db2;
        Sqldb.Db.close_wal db2;
        Sqldb.Db.close_wal db;
        Sys.remove path);
    Alcotest.test_case "sync_wal forces the pending tail out" `Quick (fun () ->
        let path = fresh "rql_wal_sync.wal" in
        let db, _ = Sqldb.Db.open_wal ~group_commit:5 ~path () in
        e db "CREATE TABLE t (a INTEGER)";
        e db "INSERT INTO t VALUES (1)";
        Alcotest.(check bool) "pending before sync" true
          ((W.status (wal_of db)).W.st_pending_bytes > 0);
        Sqldb.Db.sync_wal db;
        Alcotest.(check int) "nothing pending" 0 (W.status (wal_of db)).W.st_pending_bytes;
        let db2, _ = Sqldb.Db.open_wal ~path () in
        Alcotest.(check int) "synced tail durable" 1 (count db2 "SELECT COUNT(*) FROM t");
        Sqldb.Db.close_wal db2;
        Sqldb.Db.close_wal db;
        Sys.remove path) ]

(* --- deterministic fault injection ---------------------------------------- *)

let fault_tests =
  [ Alcotest.test_case "same seed, same schedule" `Quick (fun () ->
        let draw f = List.init 32 (fun _ -> F.torn_length f ~len:1000) in
        let a = draw (F.create ~seed:7 ()) in
        let b = draw (F.create ~seed:7 ()) in
        Alcotest.(check (list int)) "torn lengths repeat" a b;
        Alcotest.(check bool) "different seed differs" true
          (a <> draw (F.create ~seed:8 ()));
        let flips f =
          List.init 16 (fun _ -> Option.get (F.flip_bit_in_bytes f (Bytes.create 64)))
        in
        Alcotest.(check (list (pair int int))) "flip positions repeat"
          (flips (F.create ~seed:7 ()))
          (flips (F.create ~seed:7 ())));
    Alcotest.test_case "tick crashes exactly once armed, then stays dead" `Quick (fun () ->
        let f = F.create ~seed:3 () in
        F.arm_crash f ~after_ops:3 ~torn:false;
        Alcotest.(check bool) "op 1 passes" true (F.tick f = None);
        Alcotest.(check bool) "op 2 passes" true (F.tick f = None);
        Alcotest.(check bool) "op 3 crashes" true (F.tick f = Some false);
        Alcotest.(check bool) "dead after crash" true
          (try
             ignore (F.tick f);
             false
           with F.Crash -> true);
        Alcotest.(check bool) "crashed flag" true (F.crashed f));
    Alcotest.test_case "mini crash matrix: every point recovers consistent" `Quick (fun () ->
        let workload db =
          e db "CREATE TABLE t (a INTEGER)";
          for i = 1 to 3 do
            e db "BEGIN";
            e db (Printf.sprintf "INSERT INTO t VALUES (%d)" i);
            e db (Printf.sprintf "INSERT INTO t VALUES (%d)" (10 * i));
            e db "COMMIT WITH SNAPSHOT"
          done
        in
        let path = fresh "rql_wal_mini.wal" in
        let db, _ = Sqldb.Db.open_wal ~path () in
        let counter = F.create ~seed:11 () in
        W.set_fault (wal_of db) (Some counter);
        workload db;
        let n_ops = F.op_count counter in
        Sqldb.Db.close_wal db;
        Alcotest.(check bool) "workload has injection points" true (n_ops > 0);
        for k = 1 to n_ops do
          let path = fresh "rql_wal_mini.wal" in
          let db, _ = Sqldb.Db.open_wal ~path () in
          let f = F.create ~seed:(11 + k) () in
          F.arm_crash f ~after_ops:k ~torn:(k mod 2 = 0);
          W.set_fault (wal_of db) (Some f);
          (try
             workload db;
             Alcotest.failf "k=%d: survived an armed crash" k
           with F.Crash -> ());
          let db2, rec_ = Sqldb.Db.open_wal ~path () in
          if rec_ = None then Alcotest.failf "k=%d: no recovery report" k;
          Alcotest.(check (list string)) (Printf.sprintf "k=%d integrity" k) []
            (Sqldb.Integrity.check db2);
          (* all-or-nothing: each commit inserted i and 10i together *)
          (match E.exec db2 "SELECT COUNT(*) FROM t" with
          | res ->
            (match res.E.rows with
            | [ [| R.Int n |] ] when n mod 2 <> 0 ->
              Alcotest.failf "k=%d: torn transaction (%d rows)" k n
            | _ -> ())
          | exception E.Error _ -> (* crashed before the CREATE committed *) ());
          Sqldb.Db.close_wal db2
        done;
        Sys.remove path) ]

(* --- transaction failure paths -------------------------------------------- *)

let txn_failure_tests =
  [ Alcotest.test_case "failing pre-commit hook leaves no trace" `Quick (fun () ->
        let path = fresh "rql_wal_hook.wal" in
        let db, _ = Sqldb.Db.open_wal ~path () in
        e db "CREATE TABLE t (a INTEGER)";
        e db "INSERT INTO t VALUES (1)";
        let pager = db.Sqldb.Db.pager in
        let orig = pager.Storage.Pager.pre_commit_hook in
        let before = S.snapshot () in
        pager.Storage.Pager.pre_commit_hook <- (fun _ -> failwith "archiver down");
        e db "BEGIN";
        e db "INSERT INTO t VALUES (2)";
        Alcotest.(check bool) "commit propagates the failure" true
          (try
             e db "COMMIT";
             false
           with Failure m -> m = "archiver down");
        pager.Storage.Pager.pre_commit_hook <- orig;
        e db "ROLLBACK";
        let d = S.diff (S.snapshot ()) before in
        Alcotest.(check int) "nothing logged" 0 d.S.wal_appends;
        Alcotest.(check int) "nothing committed" 0 d.S.txn_commits;
        Alcotest.(check int) "one abort" 1 d.S.txn_aborts;
        Alcotest.(check int) "state untouched" 1 (count db "SELECT COUNT(*) FROM t");
        check_clean "integrity" db;
        Sqldb.Db.close_wal db;
        (* durability agrees: the failed transaction never reached the log *)
        let db2, _ = Sqldb.Db.open_wal ~path () in
        Alcotest.(check int) "failed txn not replayed" 1 (count db2 "SELECT COUNT(*) FROM t");
        Sqldb.Db.close_wal db2;
        Sys.remove path);
    Alcotest.test_case "rollback after partial writes leaves no trace" `Quick (fun () ->
        let path = fresh "rql_wal_rb.wal" in
        let db, _ = Sqldb.Db.open_wal ~path () in
        e db "CREATE TABLE t (a INTEGER)";
        e db "INSERT INTO t VALUES (1)";
        let before = S.snapshot () in
        e db "BEGIN";
        e db "INSERT INTO t VALUES (2)";
        e db "UPDATE t SET a = 99";
        e db "ROLLBACK";
        let d = S.diff (S.snapshot ()) before in
        Alcotest.(check int) "nothing logged" 0 d.S.wal_appends;
        Alcotest.(check int) "no fsync" 0 d.S.wal_fsyncs;
        Alcotest.(check int) "one abort" 1 d.S.txn_aborts;
        Alcotest.(check int) "row count untouched" 1 (count db "SELECT COUNT(*) FROM t");
        Alcotest.(check int) "value untouched" 1 (count db "SELECT SUM(a) FROM t");
        Sqldb.Db.close_wal db;
        Sys.remove path) ]

(* --- corruption scoped to referencing snapshots --------------------------- *)

let scoping_tests =
  [ Alcotest.test_case "corrupt archive block damages only its snapshots" `Quick (fun () ->
        let db = E.create () in
        e db "CREATE TABLE t (a INTEGER)";
        e db "INSERT INTO t VALUES (1)";
        e db "COMMIT WITH SNAPSHOT"; (* snapshot 1 *)
        e db "UPDATE t SET a = 2"; (* archives snapshot 1's pages *)
        e db "COMMIT WITH SNAPSHOT"; (* snapshot 2 *)
        e db "UPDATE t SET a = 3"; (* archives snapshot 2's pages *)
        let retro = retro_of db in
        (* block 0 is the first page archived after snapshot 1 was
           declared — referenced by snapshot 1 alone *)
        Retro.corrupt_archive_block retro 0 ~bit:5;
        Retro.clear_cache retro;
        let before = cget S.c_checksum_failures in
        Alcotest.(check bool) "AS OF 1 fails as damaged" true
          (try
             ignore (E.exec db "SELECT AS OF 1 * FROM t");
             false
           with E.Error m ->
             let has_needle needle =
               let nl = String.length needle and ml = String.length m in
               let rec go i = i + nl <= ml && (String.sub m i nl = needle || go (i + 1)) in
               go 0
             in
             has_needle "damaged");
        Alcotest.(check int) "checksum failure counted" (before + 1)
          (cget S.c_checksum_failures);
        Alcotest.(check bool) "snapshot 1 marked" true (Retro.is_damaged retro 1);
        Alcotest.(check bool) "snapshot 2 not marked" false (Retro.is_damaged retro 2);
        (* everything not referencing the block still works *)
        Alcotest.(check int) "current state fine" 3 (count db "SELECT SUM(a) FROM t");
        Alcotest.(check int) "snapshot 2 fine" 2 (count db "SELECT AS OF 2 SUM(a) FROM t");
        (* scrub and the integrity checker name the same damage *)
        Alcotest.(check (list (pair int int))) "scrub scopes it" [ (1, 0) ]
          (Retro.scrub retro);
        Alcotest.(check bool) "integrity reports it" true
          (List.exists
             (fun p -> p = "snapshot 1 references corrupt pagelog block 0")
             (Sqldb.Integrity.check db));
        (* and sys_snapshots exposes the flag *)
        let res = E.exec db "SELECT snap_id FROM sys_snapshots WHERE damaged = 1" in
        Alcotest.(check bool) "sys_snapshots flags it" true
          (res.E.rows = [ [| R.Int 1 |] ]));
    Alcotest.test_case "armed archive read error fails the read, scoped" `Quick (fun () ->
        let db = E.create () in
        e db "CREATE TABLE t (a INTEGER)";
        e db "INSERT INTO t VALUES (1)";
        e db "COMMIT WITH SNAPSHOT";
        e db "UPDATE t SET a = 2";
        let retro = retro_of db in
        let f = F.create ~seed:2 () in
        F.arm_read_error f ~device:Retro.archive_device ~index:0;
        Retro.set_archive_fault retro (Some f);
        Retro.clear_cache retro;
        Alcotest.(check bool) "AS OF 1 fails" true
          (try
             ignore (E.exec db "SELECT AS OF 1 * FROM t");
             false
           with E.Error _ -> true);
        (* a latent read error is transient: the snapshot is not marked
           damaged, and the read succeeds once the fault clears *)
        Alcotest.(check bool) "not marked damaged" false (Retro.is_damaged retro 1);
        Retro.set_archive_fault retro None;
        Alcotest.(check int) "read works after fault clears" 1
          (count db "SELECT AS OF 1 SUM(a) FROM t")) ]

let () =
  Alcotest.run "wal"
    [ ("disk", disk_tests);
      ("wal", wal_tests);
      ("group-commit", group_commit_tests);
      ("faults", fault_tests);
      ("txn-failures", txn_failure_tests);
      ("corruption-scoping", scoping_tests) ]
